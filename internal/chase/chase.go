// Package chase implements the guarded chase forest F+(P) of §2.5 for
// P = D ∪ Σf, bounded by a depth cap.
//
// Because every NTGD is guarded, the guard atom of a rule contains all
// universally quantified variables: a ground rule instance is fully
// determined by matching the guard against one derived atom, after which
// all side atoms (positive and negative) are ground and need only
// membership checks. The chase therefore runs per (rule, guard-atom) pair:
// no joins are required, which is the algorithmic heart of guardedness.
//
// The package maintains two views:
//
//   - the atom-level derivation graph (Result): the set of derived atoms A
//     with minimal forest depth and derivation level per atom, plus the
//     deduplicated set of ground rule instances (the edge labels of F+(P)),
//     which is exactly the finite ground normal program handed to the WFS
//     engines; and
//   - an explicit node-level forest (Forest), materialized on demand for
//     inspection and for the wfschase tool, where — as in the paper — the
//     same atom may label many nodes.
//
// Negative body atoms play no role in which children exist (F+(P) is the
// chase of the positive part P+); they are recorded on the instances so
// the WFS engines can evaluate them (Definition 5's negative hypotheses).
package chase

import (
	"fmt"

	"repro/internal/atom"
	"repro/internal/cancel"
	"repro/internal/program"
)

// Options bound the chase.
type Options struct {
	// MaxDepth is the forest-depth cap: atoms at depth ≥ MaxDepth are
	// derived but not expanded (they guard no further rules). Depth 0 is
	// the database.
	MaxDepth int
	// MaxAtoms caps the number of derived atoms as a safety valve; 0
	// means no cap. If hit, Result.Truncated is set.
	MaxAtoms int
	// Cancel, when non-nil, is polled every cancelCheckInterval expansion
	// steps; a tripped token stops the run with Result.Interrupted set.
	// Never serialized (WAL checkpoints persist only the numeric bounds).
	Cancel *cancel.Token `json:"-"`
}

// cancelCheckInterval is how many queue pops the chase runs between
// cancellation polls: frequent enough that a guarded expansion step
// budget of ~1k atoms bounds the response latency to well under a
// millisecond, rare enough that the poll (one atomic load) vanishes
// against the per-pop rule-matching work.
const cancelCheckInterval = 1024

// BudgetError reports that the MaxAtoms safety valve stopped an
// evaluation: the derived universe hit the cap, so deeper or re-derived
// answers cannot be computed under the configured budget. core and the
// root wfs package re-export this type as ErrBudgetExceeded.
type BudgetError struct {
	Atoms int // derived atoms when the cap was hit
	Limit int // the configured MaxAtoms cap
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("chase: atom budget exceeded: %d atoms derived, limit %d", e.Atoms, e.Limit)
}

// DefaultOptions are suitable for the examples and tests.
func DefaultOptions() Options { return Options{MaxDepth: 8, MaxAtoms: 2_000_000} }

// Instance is one ground rule instance r ∈ ground(P): an edge label of
// F+(P) together with its negative body (§3, F+(P) relabeling).
type Instance struct {
	Rule *program.Rule
	Head atom.AtomID
	Pos  []atom.AtomID // guard first
	Neg  []atom.AtomID
}

// Guard returns the ground guard atom of the instance.
func (in *Instance) Guard() atom.AtomID { return in.Pos[0] }

// Result is the bounded atom-level chase.
type Result struct {
	Prog *program.Program
	DB   program.Database
	Opts Options

	// Atoms lists the derived universe in first-derivation order.
	Atoms []atom.AtomID
	// Instances lists deduplicated ground rule instances.
	Instances []Instance
	// Truncated reports that MaxAtoms stopped the chase early.
	Truncated bool
	// Interrupted reports that the cancellation token stopped the chase
	// before the frontier drained: the derived universe is a sound but
	// incomplete prefix, so the result must not be used for answering.
	Interrupted bool

	depth []int32 // per AtomID: minimal forest depth, -1 = not derived
	level []int32 // per AtomID: derivation level (upper bound), -1 = not derived

	// The guarded-instance index is an intrusive linked list over two
	// flat int32 slices (rather than a map of slices) so that Extend can
	// clone the whole structure with two memcpys: firstInst[a] heads
	// atom a's list, nextInst[i] links instance i to the previous
	// instance with the same guard, -1 ends a list.
	firstInst []int32 // per AtomID
	nextInst  []int32 // per instance index

	waiters  map[atom.AtomID][]waiter
	queue    []atom.AtomID // atoms pending guard expansion
	queued   []bool        // per AtomID: currently in the expansion queue
	expanded []bool        // per AtomID: guard expansion already ran

	// replay, when non-nil, switches run/derive from rule matching to
	// re-firing a prior chase's instances (Retract's DRed-style replay).
	replay *replayState

	stats *Stats // cached summary; populated when the run finishes
}

type waiter struct {
	rule  *program.Rule
	guard atom.AtomID
}

// Run chases db under prog up to the option bounds.
func Run(prog *program.Program, db program.Database, opts Options) *Result {
	if opts.MaxDepth <= 0 {
		opts.MaxDepth = 1
	}
	r := &Result{
		Prog:    prog,
		DB:      db,
		Opts:    opts,
		waiters: make(map[atom.AtomID][]waiter),
	}
	for _, a := range db {
		r.derive(a, 0, 0)
	}
	// Program facts (rules with empty bodies) are database atoms too.
	for _, rule := range prog.Rules {
		if rule.IsFact() && len(rule.Exist) == 0 {
			sub := atom.NewSubst(rule.NumVars)
			a := prog.Store.Instantiate(rule.Head, sub)
			r.derive(a, 0, 0)
		}
	}
	r.run()
	r.finish()
	return r
}

// Extend returns a new Result that continues this chase to the deeper
// depth bound newDepth instead of re-chasing from the database: the
// derived universe, fired instances, dedup keys, parked waiters, and the
// unexpanded depth-capped frontier all carry over, and only atoms at
// depth ≥ the old bound are (newly) expanded. r itself is not mutated —
// the mutable bookkeeping is cloned first — so models already built over
// r keep serving concurrent readers unchanged.
//
// prog must share r's compiled rules (a Program.WithStore of the program
// r was chased under) and an ID space extending r's store: either r's own
// store (in-place deepening over a mutable store) or an overlay over its
// frozen form (the snapshot layer's chained-overlay rungs). Pass r.Prog
// to continue on the same store. If newDepth does not exceed the current
// bound, or the chase already saturated strictly below it (no frontier
// exists at any depth, so the deeper chase is identical), r is returned
// unchanged.
func (r *Result) Extend(prog *program.Program, newDepth int) *Result {
	nr, _ := r.ExtendCancel(prog, newDepth, nil)
	return nr
}

// ExtendCancel is Extend under a cancellation token, and it surfaces the
// MaxAtoms condition as a structured *BudgetError instead of silently
// sharing the permanently-truncated receiver: callers that deepen on an
// answering path need to distinguish "already saturated" (receiver
// returned, nil error) from "cannot deepen under the budget". tok may be
// nil (never cancelled).
func (r *Result) ExtendCancel(prog *program.Program, newDepth int, tok *cancel.Token) (*Result, error) {
	oldDepth := r.Opts.MaxDepth
	if newDepth <= oldDepth {
		return r, nil
	}
	if r.Truncated {
		// MaxAtoms exhaustion is permanent (atoms are never removed), so
		// a deeper continuation can derive nothing.
		return r, &BudgetError{Atoms: len(r.Atoms), Limit: r.Opts.MaxAtoms}
	}
	if len(r.queue) == 0 && r.ComputeStats().MaxDepth < oldDepth {
		return r, nil
	}
	nr := r.cloneForContinuation(prog, Options{MaxDepth: newDepth, MaxAtoms: r.Opts.MaxAtoms, Cancel: tok})
	// The frontier: atoms derived at the old cap were never enqueued for
	// guard expansion. Under the raised cap they are expandable again.
	for _, a := range nr.Atoms {
		if d := int(nr.depth[a]); d >= oldDepth && d < newDepth {
			nr.enqueue(a)
		}
	}
	nr.run()
	nr.finish()
	return nr, nil
}

// cloneForContinuation copies r's mutable bookkeeping into a fresh Result
// so a continuation (deeper bound, grown database) can run without
// mutating the receiver: slices are cloned with slack capacity, the
// parked-waiter map is deep-copied, and the stats cache is dropped.
func (r *Result) cloneForContinuation(prog *program.Program, opts Options) *Result {
	waiters := make(map[atom.AtomID][]waiter, len(r.waiters))
	for a, ws := range r.waiters {
		waiters[a] = append([]waiter(nil), ws...)
	}
	return &Result{
		Prog:      prog,
		DB:        r.DB,
		Opts:      opts,
		Atoms:     cloneSlack(r.Atoms),
		Instances: cloneSlack(r.Instances),
		Truncated: r.Truncated,
		depth:     cloneSlack(r.depth),
		level:     cloneSlack(r.level),
		firstInst: cloneSlack(r.firstInst),
		nextInst:  cloneSlack(r.nextInst),
		waiters:   waiters,
		queue:     cloneSlack(r.queue),
		queued:    cloneSlack(r.queued),
		expanded:  cloneSlack(r.expanded),
	}
}

// cloneSlack copies xs into a fresh slice with ~25% spare capacity, so a
// chase continuation can append to the clone without immediately
// re-copying the whole prefix on its first growth.
func cloneSlack[T any](xs []T) []T {
	out := make([]T, len(xs), len(xs)+len(xs)/4+64)
	copy(out, xs)
	return out
}

func (r *Result) ensure(a atom.AtomID) {
	for int(a) >= len(r.depth) {
		r.depth = append(r.depth, -1)
		r.level = append(r.level, -1)
		r.queued = append(r.queued, false)
		r.expanded = append(r.expanded, false)
		r.firstInst = append(r.firstInst, -1)
	}
}

// Derived reports whether a is in the derived universe A.
func (r *Result) Derived(a atom.AtomID) bool {
	return int(a) < len(r.depth) && r.depth[a] >= 0
}

// Depth returns the minimal forest depth of a, or -1 if underived.
func (r *Result) Depth(a atom.AtomID) int {
	if int(a) >= len(r.depth) {
		return -1
	}
	return int(r.depth[a])
}

// Level returns the derivation level (an upper bound on levelP, exact for
// first derivations) of a, or -1 if underived.
func (r *Result) Level(a atom.AtomID) int {
	if int(a) >= len(r.level) {
		return -1
	}
	return int(r.level[a])
}

// InstancesByGuard returns the indexes into Instances guarded by atom a,
// in firing order. The list is materialized from the intrusive index on
// each call; inspection paths (forest building, explanations) that need
// it repeatedly should hold on to the result.
func (r *Result) InstancesByGuard(a atom.AtomID) []int32 {
	if int(a) >= len(r.firstInst) {
		return nil
	}
	var out []int32
	for ii := r.firstInst[a]; ii >= 0; ii = r.nextInst[ii] {
		out = append(out, ii)
	}
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// derive records atom a at the given depth and level, enqueueing it for
// guard expansion when it is new or its depth decreased below the cap.
func (r *Result) derive(a atom.AtomID, depth, level int32) {
	r.ensure(a)
	if r.depth[a] < 0 {
		r.depth[a] = depth
		r.level[a] = level
		r.Atoms = append(r.Atoms, a)
		if int(depth) < r.Opts.MaxDepth {
			r.enqueue(a)
		}
		// Wake instances waiting on a as a side atom.
		if ws := r.waiters[a]; len(ws) > 0 {
			delete(r.waiters, a)
			for _, w := range ws {
				r.tryApply(w.rule, w.guard)
			}
		}
		if rep := r.replay; rep != nil {
			if cs := rep.parked[a]; len(cs) > 0 {
				delete(rep.parked, a)
				for _, ci := range cs {
					r.tryReplay(ci)
				}
			}
		}
		return
	}
	if depth < r.depth[a] {
		wasExpandable := int(r.depth[a]) < r.Opts.MaxDepth
		r.depth[a] = depth
		if !wasExpandable && int(depth) < r.Opts.MaxDepth {
			r.enqueue(a)
		}
		// Cascade the decrease to heads derived through a as guard.
		for ii := r.firstInst[a]; ii >= 0; ii = r.nextInst[ii] {
			in := &r.Instances[ii]
			if nd := depth + 1; nd < r.depth[in.Head] {
				r.derive(in.Head, nd, r.level[in.Head])
			}
		}
	}
	if level < r.level[a] {
		r.level[a] = level
	}
}

func (r *Result) enqueue(a atom.AtomID) {
	if r.queued[a] {
		return
	}
	r.queued[a] = true
	r.queue = append(r.queue, a)
}

func (r *Result) run() {
	tok := r.Opts.Cancel
	budget := cancelCheckInterval
	for len(r.queue) > 0 {
		if budget--; budget <= 0 {
			budget = cancelCheckInterval
			if tok.Cancelled() {
				r.Interrupted = true
				return
			}
		}
		if r.Opts.MaxAtoms > 0 && len(r.Atoms) >= r.Opts.MaxAtoms {
			r.Truncated = true
			return
		}
		a := r.queue[len(r.queue)-1]
		r.queue = r.queue[:len(r.queue)-1]
		r.queued[a] = false
		if r.expanded[a] {
			continue // defensive: each atom's guard expansion runs once
		}
		r.expanded[a] = true
		if rep := r.replay; rep != nil {
			// Replay mode: re-fire the source chase's instances guarded
			// by a instead of matching rules against the store, walking
			// the intrusive per-guard list in place (order within one
			// guard is immaterial — the fired set is what matters).
			if int(a) < len(rep.src.firstInst) {
				for ci := rep.src.firstInst[a]; ci >= 0; ci = rep.src.nextInst[ci] {
					r.tryReplay(ci)
				}
			}
			continue
		}
		for _, rule := range r.Prog.RulesGuardedBy(r.Prog.Store.PredOf(a)) {
			r.tryApply(rule, a)
		}
	}
}

// tryApply matches rule's guard against guard atom g; if the ground side
// atoms are all derived, the instance fires, otherwise it parks on the
// first missing side atom.
//
// Each (rule, guard) pair fires at most once without an explicit dedup
// set: an atom's guard expansion runs exactly once (the expanded flag,
// preserved across Extend), each tryApply call parks on at most one
// missing side atom, and a wake removes the parked waiter before
// retrying — so for a given pair there is never more than one pending
// path to firing. The instance-dedup test and the Extend-vs-Run
// cross-checks enforce this invariant.
func (r *Result) tryApply(rule *program.Rule, g atom.AtomID) {
	st := r.Prog.Store
	sub := atom.NewSubst(rule.NumVars)
	var trail []int32
	if !st.Match(rule.GuardAtom(), g, sub, &trail) {
		return
	}
	// All side atoms are ground now; intern and check membership.
	pos := make([]atom.AtomID, 0, len(rule.PosBody))
	pos = append(pos, g)
	maxLevel := r.level[g]
	for i, p := range rule.PosBody {
		if i == rule.Guard {
			continue
		}
		sa := st.Instantiate(p, sub)
		r.ensure(sa)
		pos = append(pos, sa)
		if r.depth[sa] < 0 {
			// Park: retry when sa is derived.
			r.waiters[sa] = append(r.waiters[sa], waiter{rule: rule, guard: g})
			return
		}
		if r.level[sa] > maxLevel {
			maxLevel = r.level[sa]
		}
	}
	neg := make([]atom.AtomID, 0, len(rule.NegBody))
	for _, p := range rule.NegBody {
		na := st.Instantiate(p, sub)
		r.ensure(na)
		neg = append(neg, na)
	}
	head := r.Prog.InstantiateHead(rule, sub, &trail)
	r.ensure(head)
	ii := int32(len(r.Instances))
	r.Instances = append(r.Instances, Instance{Rule: rule, Head: head, Pos: pos, Neg: neg})
	r.nextInst = append(r.nextInst, r.firstInst[g])
	r.firstInst[g] = ii
	r.derive(head, r.depth[g]+1, maxLevel+1)
}

// ParkedWaiters reports how many rule applications are parked waiting for
// a side atom to be derived — work the chase matched but could not fire.
// A large number relative to Instances means rule bodies routinely ask
// for atoms the chase never derives.
func (r *Result) ParkedWaiters() int {
	n := 0
	for _, ws := range r.waiters {
		n += len(ws)
	}
	return n
}

// DepthProfile returns the number of derived atoms at each forest depth
// (index = depth, up to the deepest derived atom): the frontier shape of
// the chase, for instrumentation. O(atoms); call it on finished chases
// only when tracing asks for detail.
func (r *Result) DepthProfile() []int {
	var prof []int
	for _, a := range r.Atoms {
		d := int(r.depth[a])
		if d < 0 {
			continue
		}
		for len(prof) <= d {
			prof = append(prof, 0)
		}
		prof[d]++
	}
	return prof
}

// Stats summarizes a chase result.
type Stats struct {
	Atoms        int
	Instances    int
	MaxDepth     int
	MaxTermDepth int
	Truncated    bool
}

// ComputeStats returns the summary statistics of the finished chase. The
// O(atoms) scan runs once — Run and Extend populate the cache when they
// finish, so the engine's per-depth evaluation and every later
// Model.Stats call share one computation.
func (r *Result) ComputeStats() Stats {
	if r.stats == nil {
		r.finish()
	}
	return *r.stats
}

// finish computes and caches the summary statistics of a completed run.
func (r *Result) finish() {
	s := Stats{Atoms: len(r.Atoms), Instances: len(r.Instances), Truncated: r.Truncated}
	for _, a := range r.Atoms {
		if d := r.Depth(a); d > s.MaxDepth {
			s.MaxDepth = d
		}
		if td := r.Prog.Store.TermDepth(a); td > s.MaxTermDepth {
			s.MaxTermDepth = td
		}
	}
	r.stats = &s
}

func (s Stats) String() string {
	return fmt.Sprintf("atoms=%d instances=%d maxDepth=%d maxTermDepth=%d truncated=%v",
		s.Atoms, s.Instances, s.MaxDepth, s.MaxTermDepth, s.Truncated)
}
