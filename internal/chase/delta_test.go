package chase

import (
	"testing"

	"repro/internal/atom"
	"repro/internal/program"
	"repro/internal/term"
)

// mkfact interns the ground atom pred(args...) into st.
func mkfact(t *testing.T, st *atom.Store, pred string, args ...string) atom.AtomID {
	t.Helper()
	p, err := st.Pred(pred, len(args))
	if err != nil {
		t.Fatal(err)
	}
	ts := make([]term.ID, len(args))
	for i, a := range args {
		ts[i] = st.Terms.Const(a)
	}
	return st.Atom(p, ts)
}

// instKey identifies an instance by its (rule, guard) pair, which
// determines it uniquely (the expansion-once invariant).
func instKey(in *Instance) int64 { return int64(in.Rule.Idx)<<32 | int64(in.Guard()) }

// checkSameChase asserts got and want have the same derived universe with
// the same minimal depths and the same instance set (same heads per
// (rule, guard) pair), regardless of derivation order.
func checkSameChase(t *testing.T, st *atom.Store, got, want *Result) {
	t.Helper()
	if len(got.Atoms) != len(want.Atoms) {
		t.Fatalf("universe: %d atoms, want %d", len(got.Atoms), len(want.Atoms))
	}
	for _, a := range want.Atoms {
		if !got.Derived(a) {
			t.Fatalf("missing atom %s", st.String(a))
		}
		if got.Depth(a) != want.Depth(a) {
			t.Errorf("depth(%s) = %d, want %d", st.String(a), got.Depth(a), want.Depth(a))
		}
	}
	if len(got.Instances) != len(want.Instances) {
		t.Fatalf("instances: %d, want %d", len(got.Instances), len(want.Instances))
	}
	heads := make(map[int64]atom.AtomID, len(want.Instances))
	for i := range want.Instances {
		heads[instKey(&want.Instances[i])] = want.Instances[i].Head
	}
	for i := range got.Instances {
		in := &got.Instances[i]
		h, ok := heads[instKey(in)]
		if !ok {
			t.Fatalf("extra instance rule %d guard %s", in.Rule.Idx, st.String(in.Guard()))
		}
		if h != in.Head {
			t.Errorf("instance rule %d guard %s: head %s, want %s",
				in.Rule.Idx, st.String(in.Guard()), st.String(in.Head), st.String(h))
		}
	}
}

// deltaOp is one scripted mutation: an addition or a retraction of a fact.
type deltaOp struct {
	retract bool
	pred    string
	args    []string
}

func add(pred string, args ...string) deltaOp { return deltaOp{pred: pred, args: args} }
func del(pred string, args ...string) deltaOp { return deltaOp{retract: true, pred: pred, args: args} }

// applyOp mutates db at the set level.
func applyOp(t *testing.T, st *atom.Store, db program.Database, op deltaOp) (program.Database, atom.AtomID) {
	t.Helper()
	a := mkfact(t, st, op.pred, op.args...)
	if op.retract {
		out := make(program.Database, 0, len(db))
		for _, f := range db {
			if f != a {
				out = append(out, f)
			}
		}
		return out, a
	}
	return append(db[:len(db):len(db)], a), a
}

// TestDeltaOpsMatchFromScratch is the chase-level cross-check: a chain of
// ExtendDB/Retract continuations must be indistinguishable (universe,
// depths, instance set) from a from-scratch Run at every step.
func TestDeltaOpsMatchFromScratch(t *testing.T) {
	cases := []struct {
		name  string
		src   string
		depth int
		ops   []deltaOp
	}{
		{
			name: "side-atom-wake",
			src: `
a(1). a(2).
a(X), b(X) -> c(X).
c(X) -> d(X).
`,
			depth: 8,
			ops: []deltaOp{
				add("b", "1"),      // wakes the parked (rule, a(1)) waiter
				add("b", "2"),      // and the other one
				del("b", "1"),      // c(1), d(1) die
				add("b", "1"),      // and come back
				del("a", "1"),      // kills the whole 1-chain
				add("c", "7"),      // IDB predicate asserted directly as EDB
				del("c", "7"),      // and gone again
				add("d", "9"),      // leaf-only atom
				del("a", "2"), del("b", "2"), // empty everything but d(9)
			},
		},
		{
			name: "idb-depth-drop",
			src: `
e(a,b). e(b,c). e(c,d). s(a).
s(X) -> r(X).
r(X), e(X,Y) -> r(Y).
`,
			depth: 8,
			ops: []deltaOp{
				add("r", "c"), // already derived at depth 2: drops to 0, cascades to r(d)
				del("r", "c"), // derivation through the chain survives
				del("s", "a"), // now the whole chain dies
				add("s", "b"), // partial chain from b
			},
		},
		{
			name:  "existential-negation",
			src:   example4,
			depth: 6,
			ops: []deltaOp{
				add("p", "0", "1"),
				add("r", "1", "1", "2"),
				del("p", "0", "0"),
				add("p", "0", "0"),
				del("r", "0", "0", "1"),
			},
		},
		{
			name: "winmove",
			src: `
move(a,b). move(b,c). move(c,d).
move(X,Y), not win(Y) -> win(X).
`,
			depth: 8,
			ops: []deltaOp{
				add("move", "d", "e"),
				del("move", "b", "c"),
				add("move", "c", "a"),
				del("move", "a", "b"),
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prog, db, st := compile(t, tc.src)
			opts := Options{MaxDepth: tc.depth, MaxAtoms: 100_000}
			cur := Run(prog, db, opts)
			for i, op := range tc.ops {
				var changed atom.AtomID
				db, changed = applyOp(t, st, db, op)
				if op.retract {
					next, dead := cur.Retract(prog, db)
					if next == nil {
						t.Fatalf("op %d: Retract returned nil", i)
					}
					// Every dead index must reference a real instance of
					// the predecessor.
					for _, ci := range dead {
						if int(ci) >= len(cur.Instances) {
							t.Fatalf("op %d: dead index %d out of range", i, ci)
						}
					}
					cur = next
				} else {
					next := cur.ExtendDB(prog, db, []atom.AtomID{changed})
					if next == nil {
						t.Fatalf("op %d: ExtendDB returned nil", i)
					}
					cur = next
				}
				scratch := Run(prog, db, opts)
				checkSameChase(t, st, cur, scratch)
			}
		})
	}
}

// TestRetractThenDeepen: a retraction continuation must still support the
// depth-dimension Extend — frontier atoms and carried waiters resume.
func TestRetractThenDeepen(t *testing.T) {
	prog, db, st := compile(t, `
s(a). s(b).
s(X) -> n(X, Y).
n(X, Y) -> n(Y, Z).
`)
	opts := Options{MaxDepth: 4, MaxAtoms: 100_000}
	cur := Run(prog, db, opts)
	db2, _ := applyOp(t, st, db, del("s", "b"))
	ret, _ := cur.Retract(prog, db2)
	deep := ret.Extend(prog, 7)
	scratch := Run(prog, db2, Options{MaxDepth: 7, MaxAtoms: 100_000})
	checkSameChase(t, st, deep, scratch)
}

// TestRetractRestoresParkedWaiter: a (rule, guard) pair parked on a side
// atom before the retraction must still fire when a later ExtendDB
// supplies the side atom.
func TestRetractRestoresParkedWaiter(t *testing.T) {
	prog, db, st := compile(t, `
a(1). a(2). z(9).
a(X), b(X) -> c(X).
`)
	opts := Options{MaxDepth: 4, MaxAtoms: 100_000}
	cur := Run(prog, db, opts) // both (rule, a(i)) pairs parked on b(i)
	db2, _ := applyOp(t, st, db, del("z", "9"))
	ret, _ := cur.Retract(prog, db2)
	db3, b1 := applyOp(t, st, db2, add("b", "1"))
	ext := ret.ExtendDB(prog, db3, []atom.AtomID{b1})
	scratch := Run(prog, db3, opts)
	checkSameChase(t, st, ext, scratch)
	c1 := mkfact(t, st, "c", "1")
	if !ext.Derived(c1) {
		t.Fatal("woken waiter did not fire after retraction continuation")
	}
}

// TestDeltaOpsRefuseTruncated: both continuations bail on a truncated
// chase, whose instance set is incomplete.
func TestDeltaOpsRefuseTruncated(t *testing.T) {
	prog, db, st := compile(t, "seed(c).\nseed(X) -> seed(Y).")
	res := Run(prog, db, Options{MaxDepth: 10, MaxAtoms: 5})
	if !res.Truncated {
		t.Fatal("expected truncation")
	}
	a := mkfact(t, st, "seed", "d")
	if got := res.ExtendDB(prog, append(db, a), []atom.AtomID{a}); got != nil {
		t.Error("ExtendDB accepted a truncated chase")
	}
	if got, _ := res.Retract(prog, db[:0]); got != nil {
		t.Error("Retract accepted a truncated chase")
	}
}
