// Package wfs is the public API of this reproduction of
//
//	Hernich, Kupke, Lukasiewicz, Gottlob:
//	"Well-Founded Semantics for Extended Datalog and Ontological
//	Reasoning", PODS 2013,
//
// providing the standard well-founded semantics (WFS) for guarded normal
// Datalog± under the unique name assumption, with decidable normal Boolean
// conjunctive query (NBCQ) answering.
//
// Quick start:
//
//	sys, err := wfs.Load(`
//	    scientist(john).
//	    scientist(X) -> isAuthorOf(X, Y).
//	    conferencePaper(X) -> article(X).
//	`)
//	snap, err := sys.Snapshot()             // immutable evaluated view
//	q, err := wfs.Prepare("? isAuthorOf(john, X).")
//	ans, err := snap.Answer(q)              // lock-free; share snap freely
//	// ans == wfs.True
//
// See the examples/ directory for complete programs, internal/core for the
// engine, and DESIGN.md for the system inventory.
//
// # Concurrency
//
// The read API is built around immutable snapshots. System.Snapshot
// returns the current *Snapshot: a frozen term/atom store plus the program
// and database at one mutation epoch. Any number of goroutines may answer
// prepared queries (Prepare) against one snapshot simultaneously — the
// hot path acquires no mutex. Evaluation state (the model at the
// configured depth and the adaptive-deepening ladder) is built at most
// once per snapshot, on private overlay stores, so reads never mutate
// shared state; query-time interning of unseen constants goes into small
// per-call overlays the same way.
//
// Writes are deltas. Apply commits a batch of fact additions and
// retractions atomically — all-or-nothing validation, one epoch bump —
// and AddFact, RetractFact, and LoadCSV are single-delta wrappers over
// the same path. A write takes the system lock, bumps the epoch, and
// unpublishes the current snapshot; the next reader rebuilds it by
// REBASING the previous snapshot's already-evaluated state onto the
// delta (resumed chase for additions, derivation-forest replay for
// retractions, warm-started WFS fixpoint over the change's dependency
// cone — see DESIGN.md "Incremental updates") instead of re-evaluating
// from scratch. A write therefore contends only with snapshot
// construction (an O(store) clone), never with in-flight readers, which
// keep answering against their — now stale, still internally consistent
// — snapshot. The System's string convenience methods (Answer, Select,
// TruthOf, …) are implemented as "grab current snapshot, run read" and
// remain safe for concurrent use.
//
// The Engine and Model accessors hand out live internal state bound to the
// system's own mutable store and are intended for single-goroutine use
// only (tools, tests, benchmarks).
package wfs

import (
	"context"
	"fmt"
	"math/big"
	"sync"
	"sync/atomic"

	"repro/internal/analysis"
	"repro/internal/atom"
	"repro/internal/core"
	"repro/internal/ground"
	"repro/internal/parser"
	"repro/internal/program"
	"repro/internal/term"
	"repro/internal/trace"
)

// Truth is the three-valued truth of the well-founded semantics.
type Truth = ground.Truth

// Truth values.
const (
	False     = ground.False
	Undefined = ground.Undefined
	True      = ground.True
)

// Options re-exports the engine options (chase depth, algorithm choice,
// adaptive-deepening and guard-band parameters).
type Options = core.Options

// ErrBudgetExceeded re-exports the structured resource-budget error: an
// answer-shaped evaluation whose chase hit the Options.MaxAtoms safety
// valve returns *ErrBudgetExceeded (carrying the atom count and the
// limit) instead of silently answering over a truncated model. Match it
// with errors.As:
//
//	var be *wfs.ErrBudgetExceeded
//	if errors.As(err, &be) { … be.Atoms, be.Limit … }
//
// Introspection paths (Stats, TrueFacts, CheckConstraints) still serve
// the truncated model — the truncation is visible in ModelStats.
type ErrBudgetExceeded = core.ErrBudgetExceeded

// System bundles a compiled guarded normal Datalog± program, its database,
// and the machinery to evaluate them: a mutable master store that writes
// intern into, and an atomically published Snapshot that reads serve from.
// See the package comment for the concurrency contract.
type System struct {
	store   *atom.Store
	prog    *program.Program
	db      program.Database
	queries []*program.Query

	opts Options

	// analysis is the load-time static report: termination classes,
	// chase-termination certificate, and diagnostics. Immutable after
	// load (the certificate and diagnostics are data-independent, so
	// fact mutations do not invalidate them).
	analysis *analysis.Report

	// mu serializes mutations (AddFact, LoadCSV) and snapshot
	// construction; snapshot readers only take the write side when the
	// snapshot must be rebuilt after a write, and cheap metadata
	// accessors (Epoch, NumFacts, …) take the read side. The legacy
	// Engine/Model accessors also build under the write side.
	mu     sync.RWMutex
	epoch  uint64
	engine *core.Engine
	snap   atomic.Pointer[Snapshot]

	// prevSnap stages the last published snapshot across a mutation so
	// the next Snapshot call can rebase its evaluated rungs onto the
	// delta (see newSnapshot) instead of rebuilding them from scratch.
	prevSnap *Snapshot

	// metrics accumulates always-on build observability across every
	// epoch's snapshots (see EngineMetrics); read via Metrics.
	metrics EngineMetrics

	// commitHook, when set, observes every validated mutation batch
	// immediately before it commits and may veto it (see CommitHook —
	// the write-ahead-log integration point). Stored in traced form;
	// SetCommitHook wraps untraced hooks.
	commitHook CommitHookTraced
}

// Load parses and compiles a source unit (facts, rules, constraints, EGDs,
// and optional '?' queries) with default options.
func Load(src string) (*System, error) { return LoadWithOptions(src, Options{}) }

// LoadWithOptions is Load with explicit engine options. Option
// combinations that could never answer a query — an adaptive-deepening
// schedule that is empty after defaults resolve, e.g. Options{GuardBand:
// 30} against the default MaxDepth 24 — are rejected here (see
// core.Options.Validate) instead of silently answering False later.
//
// Loading always runs the static-analysis pass (see System.Analysis);
// when it certifies a chase depth bound and opts.NoCertify is unset, the
// engine clamps its adaptive ladder to the certified depth and answers
// exactly (core.Options.CertifiedDepth). Analysis diagnostics — even
// Error-severity ones — do not fail the load; callers that want to
// reject broken programs check sys.Analysis().HasErrors() (wfsd does).
func LoadWithOptions(src string, opts Options) (*System, error) {
	return LoadWithOptionsTraced(src, opts, nil)
}

// LoadWithOptionsTraced is LoadWithOptions recording the load's phases
// — parse/compile and the static-analysis pass — as children of tr. A
// nil tr is LoadWithOptions.
func LoadWithOptionsTraced(src string, opts Options, tr *trace.Span) (*System, error) {
	endCompile := tr.Phase("parse-compile")
	st := atom.NewStore(term.NewStore())
	prog, db, queries, err := program.CompileText(src, st)
	endCompile()
	if err != nil {
		return nil, err
	}
	endAnalyze := tr.Phase("analyze")
	rep := analysis.Analyze(prog, db, queries)
	endAnalyze()
	opts.CertifiedDepth = 0
	if !opts.NoCertify && rep.Certificate != nil {
		opts.CertifiedDepth = rep.Certificate.DepthBound
	}
	// Validate after certification: a certified bound can rescue an
	// otherwise-empty deepening schedule by collapsing it to one rung.
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	return &System{store: st, prog: prog, db: db, queries: queries, opts: opts, analysis: rep}, nil
}

// Analysis returns the load-time static-analysis report: termination
// classes, the chase-termination certificate (if any), negation cycles,
// and diagnostics. The report is immutable and data-independent — fact
// mutations never invalidate it. Never nil for systems built by Load,
// LoadWithOptions, or Restore.
func (s *System) Analysis() *analysis.Report { return s.analysis }

// Snapshot returns the current immutable evaluated view of the system,
// building it if a write invalidated the previous one. The returned
// snapshot is safe for unlimited concurrent readers with no lock on the
// query hot path; it stays answerable (at its epoch) even after later
// writes.
func (s *System) Snapshot() (*Snapshot, error) { return s.SnapshotTraced(nil) }

// SnapshotTraced is Snapshot recording the snapshot construction — the
// store clone and publication after an epoch change — as a child of tr.
// The published-snapshot fast path records nothing; a nil tr is
// Snapshot.
func (s *System) SnapshotTraced(tr *trace.Span) (*Snapshot, error) {
	if snap := s.snap.Load(); snap != nil {
		return snap, nil
	}
	sp := tr.Child("snapshot-publish")
	defer sp.End()
	s.mu.Lock()
	defer s.mu.Unlock()
	if snap := s.snap.Load(); snap != nil {
		return snap, nil // another reader built it while we waited
	}
	store := s.store.Clone()
	store.Freeze()
	// Clip the database so the snapshot's view can never observe a
	// subsequent append, then share the clipped slice.
	s.db = s.db[:len(s.db):len(s.db)]
	// Rebase onto the previous snapshot's evaluated rungs when one is
	// staged, bounded by the overlay-chain budget: each rebased epoch
	// layers one more overlay store per rung, so after maxSnapshotChain
	// generations the next snapshot rebuilds fresh and compacts.
	prev := s.prevSnap
	if prev != nil && prev.chain+1 > maxSnapshotChain {
		prev = nil
	}
	snap := newSnapshot(store, s.prog, s.db, s.queries, s.opts, s.epoch, prev, &s.metrics)
	s.prevSnap = nil
	s.snap.Store(snap)
	return snap, nil
}

// Epoch returns the database epoch: a counter bumped by every mutation
// (AddFact, LoadCSV). Caching layers key cached answers by epoch so that
// fact writes invalidate them.
func (s *System) Epoch() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.epoch
}

// NumFacts returns the current number of database facts.
func (s *System) NumFacts() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.db)
}

// FactsEpoch returns the fact count and epoch as one consistent pair:
// reading them via NumFacts and Epoch separately can be torn by a
// concurrent write.
func (s *System) FactsEpoch() (facts int, epoch uint64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.db), s.epoch
}

// NumQueries returns the number of '?' queries embedded in the loaded
// source.
func (s *System) NumQueries() int { return len(s.queries) }

// AddFact adds the ground fact pred(args...) to the database, creating the
// predicate if needed, as a single-entry delta: one epoch bump, cached
// evaluation state rebased rather than discarded. For batches, build a
// Delta and use Apply.
func (s *System) AddFact(pred string, args ...string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applyLocked([]factSpec{{pred: pred, args: args}}, nil, nil)
}

// invalidateLocked unpublishes the current snapshot after a database
// mutation, staging it for delta rebasing by the next Snapshot call, and
// bumps the epoch. The legacy engine is not dropped — applyLocked rebases
// it. Callers must hold mu.
func (s *System) invalidateLocked() {
	if snap := s.snap.Load(); snap != nil {
		s.prevSnap = snap
	}
	s.snap.Store(nil)
	s.epoch++
}

// engineLocked returns (building if necessary) the legacy evaluation
// engine over the system's live store. Callers must hold mu.
func (s *System) engineLocked() *core.Engine {
	if s.engine == nil {
		s.engine = core.NewEngine(s.prog, s.db, s.opts)
	}
	return s.engine
}

// snapshot is Snapshot for internal read paths; the error is currently
// always nil but kept on the public method for forward compatibility.
func (s *System) snapshot() *Snapshot {
	snap, _ := s.Snapshot()
	return snap
}

// Engine returns (building if necessary) an evaluation engine over the
// system's live store. The returned engine is live internal state: it must
// not be used concurrently with other System methods. Prefer Snapshot for
// anything concurrent.
func (s *System) Engine() *core.Engine {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.engineLocked()
}

// Model evaluates (and caches) the well-founded model at the configured
// depth over the live store. Like Engine, the returned model must not be
// used concurrently with other System methods.
func (s *System) Model() *core.Model {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.engineLocked().Evaluate()
}

// Answer parses an NBCQ (with or without leading '?') and answers it via
// adaptive deepening against the current snapshot, returning the
// three-valued answer. For repeated queries, Prepare once and use
// Snapshot.Answer.
func (s *System) Answer(query string) (Truth, error) {
	q, err := Prepare(query)
	if err != nil {
		return False, err
	}
	return s.snapshot().Answer(q)
}

// AnswerCtx is Answer under a context: evaluation polls ctx
// cooperatively and returns its error (context.DeadlineExceeded or
// context.Canceled) when it fires — see Snapshot.AnswerCtx.
func (s *System) AnswerCtx(ctx context.Context, query string) (Truth, error) {
	q, err := Prepare(query)
	if err != nil {
		return False, err
	}
	return s.snapshot().AnswerCtx(ctx, q)
}

// AnswerWithStats is Answer returning the adaptive-deepening trace.
func (s *System) AnswerWithStats(query string) (Truth, *core.AnswerStats, error) {
	q, err := Prepare(query)
	if err != nil {
		return False, nil, err
	}
	return s.snapshot().AnswerWithStats(q)
}

// TraceAnswer is Answer recording a detailed evaluation trace: the
// returned EvalTrace is the phase tree of everything the query paid for —
// parse, snapshot acquisition, and each ladder rung with its chase /
// reground / condense / solve breakdown (rungs already materialized by
// earlier queries appear as cheap match-only spans). The trace is
// per-call state; tracing one query never slows concurrent untraced
// ones.
func (s *System) TraceAnswer(query string) (Truth, *core.AnswerStats, *trace.EvalTrace, error) {
	root := trace.NewDetailed("query")
	endParse := root.Phase("parse")
	q, err := Prepare(query)
	endParse()
	if err != nil {
		return False, nil, root.Trace(), err
	}
	endSnap := root.Phase("snapshot")
	snap := s.snapshot()
	endSnap()
	t, st, err := snap.answerTraced(q, root)
	return t, st, root.Trace(), err
}

// QueryResult pairs an embedded query with its answer. Err reports a
// ladder evaluation failure (see core.Options.Validate); in that case
// Answer is meaningless rather than a genuine False.
type QueryResult struct {
	Query  string
	Answer Truth
	Err    error
}

// Select returns the certain answers of a non-Boolean query as tuples of
// constant names in the query's variable order (§2.1: answers are tuples
// over ∆, so bindings to labelled nulls are excluded). The first return
// lists the variable names.
func (s *System) Select(query string) ([]string, [][]string, error) {
	q, err := Prepare(query)
	if err != nil {
		return nil, nil, err
	}
	return s.snapshot().Select(q)
}

// AnswerAll answers every query embedded in the loaded source.
func (s *System) AnswerAll() []QueryResult {
	return s.snapshot().AnswerAll()
}

// TruthOf returns the truth of a ground atom written in surface syntax,
// e.g. TruthOf("win(a)").
func (s *System) TruthOf(atomSrc string) (Truth, error) {
	return s.snapshot().TruthOf(atomSrc)
}

// ExplainAtom renders a forward proof (Definition 5) of a ground atom. The
// boolean reports whether the atom is true in the model (only true atoms
// have proofs); the error reports malformed input — the two are distinct,
// so callers can tell "not true" from "not an atom".
func (s *System) ExplainAtom(atomSrc string) (string, bool, error) {
	return s.snapshot().Explain(atomSrc)
}

// WCheck runs the goal-directed membership check on a ground atom.
func (s *System) WCheck(atomSrc string) (Truth, *core.WCheckStats, error) {
	return s.snapshot().WCheck(atomSrc)
}

// TrueFacts renders all true atoms of the model, sorted.
func (s *System) TrueFacts() []string { return s.snapshot().TrueFacts() }

// UndefinedFacts renders all undefined atoms of the model, sorted.
func (s *System) UndefinedFacts() []string { return s.snapshot().UndefinedFacts() }

// CheckConstraints evaluates the program's negative constraints and EGDs
// against the model.
func (s *System) CheckConstraints() []core.Violation {
	return s.snapshot().CheckConstraints()
}

// DeltaBound returns the Proposition 12 constant δ for the loaded schema.
func (s *System) DeltaBound() *big.Int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return core.DeltaForSchema(s.store)
}

// Stratified reports whether the program is stratified, in which case the
// stratified baseline semantics applies and coincides with the WFS. The
// rule set is immutable after Load, so no lock is needed.
func (s *System) Stratified() bool {
	_, ok := s.prog.Stratify()
	return ok
}

// Stats summarizes the evaluated system for reporting layers: database
// size, epoch, schema-level bounds, and the model statistics of
// core.Model.Stats.
type Stats struct {
	Facts int    // database facts
	Epoch uint64 // mutation epoch

	Model core.ModelStats // chase + ground model statistics

	Algorithm  string // WFS fixpoint algorithm in use
	Stratified bool   // program admits a stratification
	DeltaBound string // Proposition 12 δ (decimal, or "≈2^k" when huge)
	DeltaBits  int    // bit length of δ
}

// Stats evaluates (if necessary) and summarizes the current snapshot's
// model. The result is cached on the snapshot, so repeated calls between
// writes are cheap.
func (s *System) Stats() Stats { return s.snapshot().Stats() }

// formatBig renders a big integer exactly when small and as a power-of-two
// magnitude when printing it in full would be unreadable (δ routinely has
// thousands of digits).
func formatBig(v *big.Int) string {
	if v.BitLen() <= 128 {
		return v.String()
	}
	return fmt.Sprintf("≈2^%d", v.BitLen())
}

// NormalizeQuery parses an NBCQ and re-renders it in canonical surface
// form, without touching any store. Two queries that differ only in
// whitespace, the optional leading '?', or the trailing '.' normalize to
// the same string, making it a suitable answer-cache key.
func NormalizeQuery(query string) (string, error) {
	pq, err := parser.ParseQueryString(query)
	if err != nil {
		return "", err
	}
	return parser.FormatQuery(pq), nil
}
