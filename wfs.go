// Package wfs is the public API of this reproduction of
//
//	Hernich, Kupke, Lukasiewicz, Gottlob:
//	"Well-Founded Semantics for Extended Datalog and Ontological
//	Reasoning", PODS 2013,
//
// providing the standard well-founded semantics (WFS) for guarded normal
// Datalog± under the unique name assumption, with decidable normal Boolean
// conjunctive query (NBCQ) answering.
//
// Quick start:
//
//	sys, err := wfs.Load(`
//	    scientist(john).
//	    scientist(X) -> isAuthorOf(X, Y).
//	    conferencePaper(X) -> article(X).
//	`)
//	ans, err := sys.Answer("? isAuthorOf(john, X).")
//	// ans == wfs.True
//
// See the examples/ directory for complete programs, internal/core for the
// engine, and DESIGN.md for the system inventory.
//
// # Concurrency
//
// A System is safe for concurrent use through its string-based methods
// (AddFact, LoadCSV, Answer, AnswerWithStats, Select, TruthOf, ExplainAtom,
// WCheck, TrueFacts, UndefinedFacts, CheckConstraints, AnswerAll, Stats,
// Epoch, NumFacts, …). Internally a single lock serializes evaluation:
// term/atom interning is not thread-safe, and even query answering interns
// new terms while the chase deepens adaptively, so concurrent calls share
// one built engine rather than racing to rebuild it, and writes invalidate
// it. Cross-session parallelism and answer caching above this layer (see
// internal/server) provide read scaling.
//
// The Engine and Model accessors — and direct access to the exported
// Store/Prog/DB fields — hand out live internal state and are intended for
// single-goroutine use only (tools, tests, benchmarks).
package wfs

import (
	"fmt"
	"math/big"
	"sort"
	"sync"

	"repro/internal/atom"
	"repro/internal/core"
	"repro/internal/ground"
	"repro/internal/parser"
	"repro/internal/program"
	"repro/internal/term"
)

// Truth is the three-valued truth of the well-founded semantics.
type Truth = ground.Truth

// Truth values.
const (
	False     = ground.False
	Undefined = ground.Undefined
	True      = ground.True
)

// Options re-exports the engine options (chase depth, algorithm choice,
// adaptive-deepening and guard-band parameters).
type Options = core.Options

// System bundles a compiled guarded normal Datalog± program, its database,
// and an evaluation engine. See the package comment for the concurrency
// contract.
type System struct {
	Store   *atom.Store
	Prog    *program.Program
	DB      program.Database
	Queries []*program.Query

	opts Options

	// mu serializes every engine-touching operation: evaluation interns
	// terms and atoms into Store, which is not thread-safe, so reads
	// cannot overlap writes or each other. Cheap metadata accessors take
	// the read side.
	mu     sync.RWMutex
	epoch  uint64
	engine *core.Engine
}

// Load parses and compiles a source unit (facts, rules, constraints, EGDs,
// and optional '?' queries) with default options.
func Load(src string) (*System, error) { return LoadWithOptions(src, Options{}) }

// LoadWithOptions is Load with explicit engine options.
func LoadWithOptions(src string, opts Options) (*System, error) {
	st := atom.NewStore(term.NewStore())
	prog, db, queries, err := program.CompileText(src, st)
	if err != nil {
		return nil, err
	}
	return &System{Store: st, Prog: prog, DB: db, Queries: queries, opts: opts}, nil
}

// Epoch returns the database epoch: a counter bumped by every mutation
// (AddFact, LoadCSV). Caching layers key cached answers by epoch so that
// fact writes invalidate them.
func (s *System) Epoch() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.epoch
}

// NumFacts returns the current number of database facts.
func (s *System) NumFacts() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.DB)
}

// FactsEpoch returns the fact count and epoch as one consistent pair:
// reading them via NumFacts and Epoch separately can be torn by a
// concurrent write.
func (s *System) FactsEpoch() (facts int, epoch uint64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.DB), s.epoch
}

// AddFact adds the ground fact pred(args...) to the database, creating the
// predicate if needed, bumps the epoch, and invalidates cached evaluation
// state.
func (s *System) AddFact(pred string, args ...string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, err := s.Store.Pred(pred, len(args))
	if err != nil {
		return err
	}
	ts := make([]term.ID, len(args))
	for i, a := range args {
		ts[i] = s.Store.Terms.Const(a)
	}
	s.DB = append(s.DB, s.Store.Atom(p, ts))
	s.invalidateLocked()
	return nil
}

// invalidateLocked drops cached evaluation state after a database
// mutation. Callers must hold mu.
func (s *System) invalidateLocked() {
	s.engine = nil
	s.epoch++
}

// engineLocked returns (building if necessary) the evaluation engine.
// Callers must hold mu.
func (s *System) engineLocked() *core.Engine {
	if s.engine == nil {
		s.engine = core.NewEngine(s.Prog, s.DB, s.opts)
	}
	return s.engine
}

// modelLocked returns (building if necessary) the model at the configured
// depth. Callers must hold mu.
func (s *System) modelLocked() *core.Model { return s.engineLocked().Evaluate() }

// Engine returns (building if necessary) the evaluation engine. The
// returned engine is live internal state: it must not be used concurrently
// with other System methods.
func (s *System) Engine() *core.Engine {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.engineLocked()
}

// Model evaluates (and caches) the well-founded model at the configured
// depth. Like Engine, the returned model must not be used concurrently
// with other System methods.
func (s *System) Model() *core.Model {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.modelLocked()
}

// Answer parses an NBCQ (with or without leading '?') and answers it via
// adaptive deepening, returning the three-valued answer.
func (s *System) Answer(query string) (Truth, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	q, err := program.ParseQuery(query, s.Store)
	if err != nil {
		return False, err
	}
	ans, _ := s.engineLocked().Answer(q)
	return ans, nil
}

// AnswerWithStats is Answer returning the adaptive-deepening trace.
func (s *System) AnswerWithStats(query string) (Truth, *core.AnswerStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	q, err := program.ParseQuery(query, s.Store)
	if err != nil {
		return False, nil, err
	}
	ans, stats := s.engineLocked().Answer(q)
	return ans, stats, nil
}

// QueryResult pairs an embedded query with its answer.
type QueryResult struct {
	Query  string
	Answer Truth
}

// Select returns the certain answers of a non-Boolean query as tuples of
// constant names in the query's variable order (§2.1: answers are tuples
// over ∆, so bindings to labelled nulls are excluded). The first return
// lists the variable names.
func (s *System) Select(query string) ([]string, [][]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	q, err := program.ParseQuery(query, s.Store)
	if err != nil {
		return nil, nil, err
	}
	tuples := s.modelLocked().Select(q)
	out := make([][]string, len(tuples))
	for i, tup := range tuples {
		row := make([]string, len(tup))
		for j, t := range tup {
			row[j] = s.Store.Terms.String(t)
		}
		out[i] = row
	}
	return append([]string(nil), q.VarNames...), out, nil
}

// AnswerAll answers every query embedded in the loaded source.
func (s *System) AnswerAll() []QueryResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]QueryResult, 0, len(s.Queries))
	for _, q := range s.Queries {
		ans, _ := s.engineLocked().Answer(q)
		out = append(out, QueryResult{Query: q.Label, Answer: ans})
	}
	return out
}

// parseGroundAtomLocked parses "pred(c1,…,cn)" into an interned ground
// atom. Callers must hold mu.
func (s *System) parseGroundAtomLocked(src string) (atom.AtomID, error) {
	q, err := program.ParseQuery(src, s.Store)
	if err != nil {
		return atom.NoAtom, err
	}
	if len(q.Pos) != 1 || len(q.Neg) != 0 || q.NumVars != 0 {
		return atom.NoAtom, fmt.Errorf("wfs: %q is not a single ground atom", src)
	}
	sub := atom.NewSubst(0)
	return s.Store.Instantiate(q.Pos[0], sub), nil
}

// TruthOf returns the truth of a ground atom written in surface syntax,
// e.g. TruthOf("win(a)").
func (s *System) TruthOf(atomSrc string) (Truth, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	a, err := s.parseGroundAtomLocked(atomSrc)
	if err != nil {
		return False, err
	}
	return s.modelLocked().Truth(a), nil
}

// ExplainAtom renders a forward proof (Definition 5) of a true ground
// atom, or returns false when the atom is not true in the model.
func (s *System) ExplainAtom(atomSrc string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	a, err := s.parseGroundAtomLocked(atomSrc)
	if err != nil {
		return "", false
	}
	proof, ok := s.modelLocked().Explain(a)
	if !ok {
		return "", false
	}
	return proof.Render(s.Store), true
}

// WCheck runs the goal-directed membership check on a ground atom.
func (s *System) WCheck(atomSrc string) (Truth, *core.WCheckStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	a, err := s.parseGroundAtomLocked(atomSrc)
	if err != nil {
		return False, nil, err
	}
	t, stats := s.modelLocked().WCheck(a)
	return t, stats, nil
}

// TrueFacts renders all true atoms of the model, sorted.
func (s *System) TrueFacts() []string { return s.renderAtoms(ground.True) }

// UndefinedFacts renders all undefined atoms of the model, sorted.
func (s *System) UndefinedFacts() []string { return s.renderAtoms(ground.Undefined) }

func (s *System) renderAtoms(tv Truth) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.modelLocked()
	var out []string
	for i, g := range m.GP.Atoms {
		if m.GM.Truth[i] == tv {
			out = append(out, s.Store.String(g))
		}
	}
	sort.Strings(out)
	return out
}

// CheckConstraints evaluates the program's negative constraints and EGDs
// against the model.
func (s *System) CheckConstraints() []core.Violation {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.modelLocked().CheckConstraints()
}

// DeltaBound returns the Proposition 12 constant δ for the loaded schema.
func (s *System) DeltaBound() *big.Int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return core.DeltaForSchema(s.Store)
}

// Stratified reports whether the program is stratified, in which case the
// stratified baseline semantics applies and coincides with the WFS.
func (s *System) Stratified() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.Prog.Stratify()
	return ok
}

// Stats summarizes the evaluated system for reporting layers: database
// size, epoch, schema-level bounds, and the model statistics of
// core.Model.Stats. Building the model if necessary, it holds the write
// lock for the duration.
type Stats struct {
	Facts int    // database facts
	Epoch uint64 // mutation epoch

	Model core.ModelStats // chase + ground model statistics

	Algorithm  string // WFS fixpoint algorithm in use
	Stratified bool   // program admits a stratification
	DeltaBound string // Proposition 12 δ (decimal, or "≈2^k" when huge)
	DeltaBits  int    // bit length of δ
}

// Stats evaluates (if necessary) and summarizes the current model.
func (s *System) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.engineLocked()
	m := e.Evaluate()
	_, strat := s.Prog.Stratify()
	delta := core.DeltaForSchema(s.Store)
	return Stats{
		Facts:      len(s.DB),
		Epoch:      s.epoch,
		Model:      m.Stats(),
		Algorithm:  e.Opts.Algorithm.String(),
		Stratified: strat,
		DeltaBound: formatBig(delta),
		DeltaBits:  delta.BitLen(),
	}
}

// formatBig renders a big integer exactly when small and as a power-of-two
// magnitude when printing it in full would be unreadable (δ routinely has
// thousands of digits).
func formatBig(v *big.Int) string {
	if v.BitLen() <= 128 {
		return v.String()
	}
	return fmt.Sprintf("≈2^%d", v.BitLen())
}

// NormalizeQuery parses an NBCQ and re-renders it in canonical surface
// form, without touching any store. Two queries that differ only in
// whitespace, the optional leading '?', or the trailing '.' normalize to
// the same string, making it a suitable answer-cache key.
func NormalizeQuery(query string) (string, error) {
	pq, err := parser.ParseQueryString(query)
	if err != nil {
		return "", err
	}
	return parser.FormatQuery(pq), nil
}
