// Package wfs is the public API of this reproduction of
//
//	Hernich, Kupke, Lukasiewicz, Gottlob:
//	"Well-Founded Semantics for Extended Datalog and Ontological
//	Reasoning", PODS 2013,
//
// providing the standard well-founded semantics (WFS) for guarded normal
// Datalog± under the unique name assumption, with decidable normal Boolean
// conjunctive query (NBCQ) answering.
//
// Quick start:
//
//	sys, err := wfs.Load(`
//	    scientist(john).
//	    scientist(X) -> isAuthorOf(X, Y).
//	    conferencePaper(X) -> article(X).
//	`)
//	ans, err := sys.Answer("? isAuthorOf(john, X).")
//	// ans == wfs.True
//
// See the examples/ directory for complete programs, internal/core for the
// engine, and DESIGN.md for the system inventory.
package wfs

import (
	"fmt"
	"math/big"
	"sort"

	"repro/internal/atom"
	"repro/internal/core"
	"repro/internal/ground"
	"repro/internal/program"
	"repro/internal/term"
)

// Truth is the three-valued truth of the well-founded semantics.
type Truth = ground.Truth

// Truth values.
const (
	False     = ground.False
	Undefined = ground.Undefined
	True      = ground.True
)

// Options re-exports the engine options (chase depth, algorithm choice,
// adaptive-deepening and guard-band parameters).
type Options = core.Options

// System bundles a compiled guarded normal Datalog± program, its database,
// and an evaluation engine.
type System struct {
	Store   *atom.Store
	Prog    *program.Program
	DB      program.Database
	Queries []*program.Query

	opts   Options
	engine *core.Engine
}

// Load parses and compiles a source unit (facts, rules, constraints, EGDs,
// and optional '?' queries) with default options.
func Load(src string) (*System, error) { return LoadWithOptions(src, Options{}) }

// LoadWithOptions is Load with explicit engine options.
func LoadWithOptions(src string, opts Options) (*System, error) {
	st := atom.NewStore(term.NewStore())
	prog, db, queries, err := program.CompileText(src, st)
	if err != nil {
		return nil, err
	}
	return &System{Store: st, Prog: prog, DB: db, Queries: queries, opts: opts}, nil
}

// AddFact adds the ground fact pred(args...) to the database, creating the
// predicate if needed, and invalidates cached evaluation state.
func (s *System) AddFact(pred string, args ...string) error {
	p, err := s.Store.Pred(pred, len(args))
	if err != nil {
		return err
	}
	ts := make([]term.ID, len(args))
	for i, a := range args {
		ts[i] = s.Store.Terms.Const(a)
	}
	s.DB = append(s.DB, s.Store.Atom(p, ts))
	s.engine = nil
	return nil
}

// Engine returns (building if necessary) the evaluation engine.
func (s *System) Engine() *core.Engine {
	if s.engine == nil {
		s.engine = core.NewEngine(s.Prog, s.DB, s.opts)
	}
	return s.engine
}

// Model evaluates (and caches) the well-founded model at the configured
// depth.
func (s *System) Model() *core.Model { return s.Engine().Evaluate() }

// Answer parses an NBCQ (with or without leading '?') and answers it via
// adaptive deepening, returning the three-valued answer.
func (s *System) Answer(query string) (Truth, error) {
	q, err := program.ParseQuery(query, s.Store)
	if err != nil {
		return False, err
	}
	ans, _ := s.Engine().Answer(q)
	return ans, nil
}

// AnswerWithStats is Answer returning the adaptive-deepening trace.
func (s *System) AnswerWithStats(query string) (Truth, *core.AnswerStats, error) {
	q, err := program.ParseQuery(query, s.Store)
	if err != nil {
		return False, nil, err
	}
	ans, stats := s.Engine().Answer(q)
	return ans, stats, nil
}

// QueryResult pairs an embedded query with its answer.
type QueryResult struct {
	Query  string
	Answer Truth
}

// Select returns the certain answers of a non-Boolean query as tuples of
// constant names in the query's variable order (§2.1: answers are tuples
// over ∆, so bindings to labelled nulls are excluded). The first return
// lists the variable names.
func (s *System) Select(query string) ([]string, [][]string, error) {
	q, err := program.ParseQuery(query, s.Store)
	if err != nil {
		return nil, nil, err
	}
	tuples := s.Model().Select(q)
	out := make([][]string, len(tuples))
	for i, tup := range tuples {
		row := make([]string, len(tup))
		for j, t := range tup {
			row[j] = s.Store.Terms.String(t)
		}
		out[i] = row
	}
	return append([]string(nil), q.VarNames...), out, nil
}

// AnswerAll answers every query embedded in the loaded source.
func (s *System) AnswerAll() []QueryResult {
	out := make([]QueryResult, 0, len(s.Queries))
	for _, q := range s.Queries {
		ans, _ := s.Engine().Answer(q)
		out = append(out, QueryResult{Query: q.Label, Answer: ans})
	}
	return out
}

// parseGroundAtom parses "pred(c1,…,cn)" into an interned ground atom.
func (s *System) parseGroundAtom(src string) (atom.AtomID, error) {
	q, err := program.ParseQuery(src, s.Store)
	if err != nil {
		return atom.NoAtom, err
	}
	if len(q.Pos) != 1 || len(q.Neg) != 0 || q.NumVars != 0 {
		return atom.NoAtom, fmt.Errorf("wfs: %q is not a single ground atom", src)
	}
	sub := atom.NewSubst(0)
	return s.Store.Instantiate(q.Pos[0], sub), nil
}

// TruthOf returns the truth of a ground atom written in surface syntax,
// e.g. TruthOf("win(a)").
func (s *System) TruthOf(atomSrc string) (Truth, error) {
	a, err := s.parseGroundAtom(atomSrc)
	if err != nil {
		return False, err
	}
	return s.Model().Truth(a), nil
}

// ExplainAtom renders a forward proof (Definition 5) of a true ground
// atom, or returns false when the atom is not true in the model.
func (s *System) ExplainAtom(atomSrc string) (string, bool) {
	a, err := s.parseGroundAtom(atomSrc)
	if err != nil {
		return "", false
	}
	proof, ok := s.Model().Explain(a)
	if !ok {
		return "", false
	}
	return proof.Render(s.Store), true
}

// WCheck runs the goal-directed membership check on a ground atom.
func (s *System) WCheck(atomSrc string) (Truth, *core.WCheckStats, error) {
	a, err := s.parseGroundAtom(atomSrc)
	if err != nil {
		return False, nil, err
	}
	t, stats := s.Model().WCheck(a)
	return t, stats, nil
}

// TrueFacts renders all true atoms of the model, sorted.
func (s *System) TrueFacts() []string { return s.renderAtoms(ground.True) }

// UndefinedFacts renders all undefined atoms of the model, sorted.
func (s *System) UndefinedFacts() []string { return s.renderAtoms(ground.Undefined) }

func (s *System) renderAtoms(tv Truth) []string {
	m := s.Model()
	var out []string
	for i, g := range m.GP.Atoms {
		if m.GM.Truth[i] == tv {
			out = append(out, s.Store.String(g))
		}
	}
	sort.Strings(out)
	return out
}

// CheckConstraints evaluates the program's negative constraints and EGDs
// against the model.
func (s *System) CheckConstraints() []core.Violation { return s.Model().CheckConstraints() }

// DeltaBound returns the Proposition 12 constant δ for the loaded schema.
func (s *System) DeltaBound() *big.Int { return core.DeltaForSchema(s.Store) }

// Stratified reports whether the program is stratified, in which case the
// stratified baseline semantics applies and coincides with the WFS.
func (s *System) Stratified() bool {
	_, ok := s.Prog.Stratify()
	return ok
}
