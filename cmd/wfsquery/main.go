// wfsquery answers NBCQs over a guarded normal Datalog± program under the
// well-founded semantics with UNA.
//
// Usage:
//
//	wfsquery [-depth N] [-algorithm alt|unfounded|forward] [-query Q] [-retract F] [-trace]
//	         [-timeout D] [-traceparent HDR] file.dlg
//
// The program file may embed queries ('? lit, ….'); additional queries can
// be passed with -query (repeatable). -retract (repeatable) removes
// database facts after loading and before answering — all retractions
// apply as one atomic delta. With -model, the tool also prints the true
// and undefined atoms of the model. With -trace, each -query prints a
// per-phase evaluation trace (chase/ground/condense/solve timings).
// -timeout bounds each query evaluation with a deadline: the adaptive
// ladder is cooperatively cancelled when it expires and the run fails
// with "deadline exceeded" instead of chasing a non-terminating program
// forever (0 = no deadline).
//
// Every run carries a trace identity: a W3C traceparent, continued from
// -traceparent when a well-formed header value is given (so a run
// launched by a traced service shares its trace ID) or minted fresh.
// -v and -trace print it as trace_id=..., the same identifier wfsd
// stamps on access-log lines and flight-recorder entries.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	wfs "repro"
	"repro/internal/core"
	"repro/internal/trace"
)

type queryFlags []string

func (q *queryFlags) String() string     { return strings.Join(*q, "; ") }
func (q *queryFlags) Set(s string) error { *q = append(*q, s); return nil }

func main() {
	var (
		depth     = flag.Int("depth", 0, "chase depth (0 = default)")
		algorithm = flag.String("algorithm", "alt", "WFS algorithm: alt | unfounded | forward")
		showModel = flag.Bool("model", false, "print true and undefined atoms")
		verbose   = flag.Bool("v", false, "print adaptive-deepening traces")
		traceEval = flag.Bool("trace", false, "print a per-phase evaluation trace for each -query")
		explain   = flag.String("explain", "", "print a forward proof (Def. 5) of a ground atom, e.g. -explain 't(0)'")
		parentHdr = flag.String("traceparent", "", "continue this W3C traceparent (malformed values mint a fresh trace ID)")
		timeout   = flag.Duration("timeout", 0, "deadline per query evaluation; expiry cancels the ladder cooperatively (0 = none)")
		queries   queryFlags
		retracts  queryFlags
	)
	flag.Var(&queries, "query", "additional NBCQ (repeatable)")
	flag.Var(&retracts, "retract", "database fact to retract after loading, e.g. -retract 'p(a)' (repeatable)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: wfsquery [flags] program.dlg")
		flag.PrintDefaults()
		os.Exit(2)
	}

	// One trace identity per run, continued from -traceparent when the
	// caller passed a well-formed header value (malformed is never an
	// error — the run proceeds under a fresh identity, mirroring wfsd).
	tctx, ok := trace.ParseTraceparent(*parentHdr)
	if ok {
		tctx = tctx.WithNewSpan()
	} else {
		tctx = trace.MintContext()
	}
	if *verbose || *traceEval {
		fmt.Printf("trace_id=%s\n", tctx.TraceIDString())
	}

	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	opts := wfs.Options{Depth: *depth}
	switch *algorithm {
	case "alt":
		opts.Algorithm = core.AltFixpoint
	case "unfounded":
		opts.Algorithm = core.UnfoundedSets
	case "forward":
		opts.Algorithm = core.ForwardProofs
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *algorithm))
	}
	sys, err := wfs.LoadWithOptions(string(src), opts)
	if err != nil {
		fatal(err)
	}

	if len(retracts) > 0 {
		d := wfs.NewDelta()
		for _, fs := range retracts {
			pred, args, err := wfs.ParseFact(fs)
			if err != nil {
				fatal(err)
			}
			d.Retract(pred, args...)
		}
		if err := sys.Apply(d); err != nil {
			fatal(err)
		}
	}

	for _, r := range sys.AnswerAll() {
		if r.Err != nil {
			fatal(r.Err)
		}
		fmt.Printf("%-50s %s\n", r.Query, r.Answer)
	}
	for _, qs := range queries {
		ans, stats, et, err := answerOne(sys, qs, *timeout, *traceEval)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-50s %s\n", qs, ans)
		if et != nil {
			fmt.Print(et.Format())
		}
		if *verbose {
			fmt.Printf("  depths=%v answers=%v exact=%v stable=%v\n",
				stats.Depths, stats.Answers, stats.Exact, stats.Stable)
		}
	}

	if *explain != "" {
		tv, err := sys.TruthOf(*explain)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s is %s in WFS(D,Σ)\n", *explain, tv)
		if out, ok, err := sys.ExplainAtom(*explain); err != nil {
			fatal(err)
		} else if ok {
			fmt.Println("forward proof (Definition 5):")
			fmt.Print(out)
		} else {
			fmt.Println("no forward proof with WFS-false negative hypotheses exists")
		}
	}

	if vs := sys.CheckConstraints(); len(vs) > 0 {
		fmt.Println("constraint violations:")
		for _, v := range vs {
			fmt.Printf("  %s\n", v)
		}
	}

	if *showModel {
		fmt.Println("true atoms:")
		for _, a := range sys.TrueFacts() {
			fmt.Printf("  %s\n", a)
		}
		if und := sys.UndefinedFacts(); len(und) > 0 {
			fmt.Println("undefined atoms:")
			for _, a := range und {
				fmt.Printf("  %s\n", a)
			}
		}
	}
}

// answerOne evaluates one -query, optionally under a deadline and
// optionally traced. With no deadline it uses the System convenience
// paths; with one it prepares the query against a snapshot and runs the
// context-aware ladder, so expiry cancels the evaluation cooperatively
// mid-chase instead of after the fact.
func answerOne(sys *wfs.System, qs string, timeout time.Duration, traced bool) (wfs.Truth, *core.AnswerStats, *trace.EvalTrace, error) {
	if timeout <= 0 {
		if traced {
			return sys.TraceAnswer(qs)
		}
		ans, stats, err := sys.AnswerWithStats(qs)
		return ans, stats, nil, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	q, err := wfs.Prepare(qs)
	if err != nil {
		return wfs.False, nil, nil, err
	}
	snap, err := sys.Snapshot()
	if err != nil {
		return wfs.False, nil, nil, err
	}
	var root *trace.Span
	if traced {
		root = trace.NewDetailed("query")
	}
	ans, stats, err := snap.AnswerCtxTraced(ctx, q, root)
	root.End()
	var et *trace.EvalTrace
	if traced && err == nil {
		et = root.Trace()
	}
	return ans, stats, et, err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wfsquery:", err)
	os.Exit(1)
}
