package main

import (
	"strings"
	"testing"

	wfs "repro"
)

func run(t *testing.T, base, input string) string {
	t.Helper()
	sys, err := wfs.Load(base)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	repl(sys, base, strings.NewReader(input), &out)
	return out.String()
}

func TestReplStatementsAndQueries(t *testing.T) {
	out := run(t, "", `
move(a,b).
move(b,c).
move(X,Y), not win(Y) -> win(X).
? win(b).
?? win(X).
`)
	if !strings.Contains(out, "true") {
		t.Errorf("query answer missing:\n%s", out)
	}
	if !strings.Contains(out, "(1 tuples)") || !strings.Contains(out, "b") {
		t.Errorf("select output missing:\n%s", out)
	}
}

func TestReplCommands(t *testing.T) {
	base := "move(a,b).\nmove(X,Y), not win(Y) -> win(X).\n"
	out := run(t, base, `
:model
:stats
:check
:wcheck win(a)
:explain win(a)
:help
:nonsense
`)
	for _, want := range []string{
		"true atoms:",
		"chase: atoms=",
		"no violations",
		"win(a) is true (closure",
		"negative hypotheses",
		"commands:",
		"unknown command",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestReplErrorsAndQuit(t *testing.T) {
	out := run(t, "", `
this is not valid syntax ->
? alsobad(
:quit
p(a).
`)
	if !strings.Contains(out, "error:") {
		t.Errorf("syntax error not surfaced:\n%s", out)
	}
	// :quit must stop processing: the trailing fact is never acknowledged.
	if strings.Count(out, "ok") != 0 {
		t.Errorf("input after :quit was processed:\n%s", out)
	}
}
