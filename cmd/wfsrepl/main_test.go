package main

import (
	"strings"
	"testing"

	wfs "repro"
)

func run(t *testing.T, base, input string) string {
	t.Helper()
	sys, err := wfs.Load(base)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	repl(sys, base, strings.NewReader(input), &out)
	return out.String()
}

func TestReplStatementsAndQueries(t *testing.T) {
	out := run(t, "", `
move(a,b).
move(b,c).
move(X,Y), not win(Y) -> win(X).
? win(b).
?? win(X).
`)
	if !strings.Contains(out, "true") {
		t.Errorf("query answer missing:\n%s", out)
	}
	if !strings.Contains(out, "(1 tuples)") || !strings.Contains(out, "b") {
		t.Errorf("select output missing:\n%s", out)
	}
}

func TestReplCommands(t *testing.T) {
	base := "move(a,b).\nmove(X,Y), not win(Y) -> win(X).\n"
	out := run(t, base, `
:model
:stats
:check
:wcheck win(a)
:explain win(a)
:help
:nonsense
`)
	for _, want := range []string{
		"true atoms:",
		"chase: atoms=",
		"no violations",
		"win(a) is true (closure",
		"negative hypotheses",
		"commands:",
		"unknown command",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestReplTraceToggle(t *testing.T) {
	base := "move(a,b).\nmove(X,Y), not win(Y) -> win(X).\n"
	out := run(t, base, `
:trace
:trace on
? win(a).
:trace off
? win(a).
`)
	if !strings.Contains(out, "tracing off (use :trace on|off)") {
		t.Errorf("bare :trace did not report state:\n%s", out)
	}
	if !strings.Contains(out, "tracing on") {
		t.Errorf(":trace on not acknowledged:\n%s", out)
	}
	// The traced query prints the phase tree; exactly one query ran traced.
	for _, want := range []string{"query", "ladder", "depth-"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace output missing %q:\n%s", want, out)
		}
	}
	if got := strings.Count(out, "ladder"); got != 1 {
		t.Errorf(":trace off did not stop tracing (%d ladder lines):\n%s", got, out)
	}
}

func TestReplErrorsAndQuit(t *testing.T) {
	out := run(t, "", `
this is not valid syntax ->
? alsobad(
:quit
p(a).
`)
	if !strings.Contains(out, "error:") {
		t.Errorf("syntax error not surfaced:\n%s", out)
	}
	// :quit must stop processing: the trailing fact is never acknowledged.
	if strings.Count(out, "ok") != 0 {
		t.Errorf("input after :quit was processed:\n%s", out)
	}
}

func TestReplRetract(t *testing.T) {
	base := "move(a,b). move(b,a). move(b,c).\nmove(X,Y), not win(Y) -> win(X).\n"
	out := run(t, base, `
? win(b).
:retract move(b,c)
? win(b).
:retract move(z,z)
:retract win(X)
`)
	// Before retraction win(b) is true; after, the a↔b draw leaves it
	// undefined; bad targets report errors without crashing.
	if !strings.Contains(out, "true") || !strings.Contains(out, "undefined") {
		t.Errorf("retraction did not flip the answer:\n%s", out)
	}
	if strings.Count(out, "error:") != 2 {
		t.Errorf("bad retraction targets not both rejected:\n%s", out)
	}
}

func TestReplRetractSurvivesRebuild(t *testing.T) {
	base := "move(a,b). move(b,a). move(b,c).\nmove(X,Y), not win(Y) -> win(X).\n"
	out := run(t, base, `
:retract move(b,c)
move(c,d).
? win(b).
`)
	// The statement rebuilds the system from the accumulated source; the
	// earlier retraction must be replayed, so win(b) stays undefined
	// (only the a↔b cycle and the disconnected c→d edge remain).
	if !strings.Contains(out, "undefined") {
		t.Errorf("retraction lost across rebuild:\n%s", out)
	}
}

func TestReplReassertCancelsRetraction(t *testing.T) {
	base := "move(a,b). move(b,a). move(b,c).\nmove(X,Y), not win(Y) -> win(X).\n"
	out := run(t, base, `
:retract move(b,c)
move(b,c).
? win(b).
`)
	// Re-asserting the retracted fact cancels the pending retraction:
	// the user's latest word wins, so win(b) is true again.
	if !strings.Contains(out, "true") {
		t.Errorf("re-asserted fact was suppressed by retraction replay:\n%s", out)
	}
}

func TestReplCompoundReassertCancelsRetraction(t *testing.T) {
	base := "move(a,b). move(b,a). move(b,c).\nmove(X,Y), not win(Y) -> win(X).\n"
	out := run(t, base, `
:retract move(b,c)
move(b,c). move(e,f).
? win(b).
? win(e).
`)
	// The compound statement re-asserts move(b,c): the retraction is
	// cancelled, so win(b) is true again, and the unrelated new edge
	// makes win(e) true.
	if strings.Count(out, "true") < 2 {
		t.Errorf("compound re-assertion suppressed by retraction replay:\n%s", out)
	}
}
