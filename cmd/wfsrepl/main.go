// wfsrepl is an interactive shell for guarded normal Datalog± under the
// well-founded semantics.
//
// Usage:
//
//	wfsrepl [program.dlg ...]        # load files, then read stdin
//
// Each input line is a statement:
//
//	p(a).                            add a fact or rule
//	p(X), not q(X) -> r(X).          add a rule
//	? r(a).                          answer an NBCQ (adaptive deepening)
//	?? r(X).                         select answer tuples over constants
//	:retract p(a)                    retract a database fact
//	:explain t(0)                    print a forward proof (Definition 5)
//	:wcheck win(a)                   goal-directed membership check
//	:model                           print true and undefined atoms
//	:check                           evaluate constraints and EGDs
//	:stats                           chase/model statistics
//	:lint                            static analysis report (termination, diagnostics)
//	:trace on|off                    per-phase evaluation traces for '?' queries
//	:timeout 500ms|off               deadline per '?' query (cooperative cancel)
//	:help                            this text
//	:quit                            exit
package main

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"os"
	"slices"
	"strings"
	"time"

	wfs "repro"
	"repro/internal/parser"
	"repro/internal/trace"
)

const help = `statements:
  fact or rule terminated by '.'    add to the program/database
  ? lit, lit, ... .                 answer an NBCQ
  ?? lit, lit, ... .                select answer tuples over constants
commands:
  :retract FACT   retract a database fact, e.g. :retract p(a)
  :explain ATOM   forward proof of a true ground atom
  :wcheck ATOM    goal-directed membership check
  :model          print true and undefined atoms
  :check          evaluate constraints and EGDs
  :stats          chase/model statistics
  :lint           static analysis: termination classes, certificate, diagnostics
  :trace on|off   per-phase evaluation traces for '?' queries
  :timeout D|off  deadline per '?' query, e.g. :timeout 500ms; expiry cancels
                  the evaluation cooperatively (:timeout alone shows the state)
  :help           this text
  :quit           exit`

func main() {
	var src strings.Builder
	for _, f := range os.Args[1:] {
		data, err := os.ReadFile(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wfsrepl:", err)
			os.Exit(1)
		}
		src.Write(data)
		src.WriteByte('\n')
	}
	sys, err := wfs.Load(src.String())
	if err != nil {
		fmt.Fprintln(os.Stderr, "wfsrepl:", err)
		os.Exit(1)
	}
	for _, r := range sys.AnswerAll() {
		if r.Err != nil {
			fmt.Fprintln(os.Stderr, "wfsrepl:", r.Err)
			continue
		}
		fmt.Printf("%-40s %s\n", r.Query, r.Answer)
	}
	repl(sys, src.String(), os.Stdin, os.Stdout)
}

func repl(sys *wfs.System, base string, in io.Reader, out io.Writer) {
	accumulated := base
	// Retractions applied so far: a statement rebuilds the system from the
	// accumulated source, which would resurrect retracted facts, so they
	// are replayed after every rebuild.
	type retraction struct {
		pred string
		args []string
	}
	var retracted []retraction
	tracing := false
	var timeout time.Duration // 0 = no deadline on '?' queries
	scanner := bufio.NewScanner(in)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Fprint(out, "wfs> ")
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		switch {
		case line == "" || strings.HasPrefix(line, "%") || strings.HasPrefix(line, "#"):
		case line == ":quit" || line == ":q":
			return
		case line == ":help":
			fmt.Fprintln(out, help)
		case line == ":model":
			fmt.Fprintln(out, "true atoms:")
			for _, a := range sys.TrueFacts() {
				fmt.Fprintln(out, " ", a)
			}
			if und := sys.UndefinedFacts(); len(und) > 0 {
				fmt.Fprintln(out, "undefined atoms:")
				for _, a := range und {
					fmt.Fprintln(out, " ", a)
				}
			}
		case line == ":check":
			vs := sys.CheckConstraints()
			if len(vs) == 0 {
				fmt.Fprintln(out, "no violations")
			}
			for _, v := range vs {
				fmt.Fprintln(out, " ", v)
			}
		case line == ":lint":
			fmt.Fprint(out, sys.Analysis().Format(true))
		case line == ":stats":
			m := sys.Model()
			stats := m.Chase.ComputeStats()
			fmt.Fprintf(out, "chase: %s\n", stats)
			fmt.Fprintf(out, "model: %d true, %d undefined, %d rounds, exact=%v\n",
				m.GM.CountTrue(), m.GM.CountUndefined(), m.GM.Rounds, m.Exact)
			fmt.Fprintf(out, "δ (Prop. 12) ≈ 2^%d\n", sys.DeltaBound().BitLen())
		case strings.HasPrefix(line, ":retract "):
			factSrc := strings.TrimSpace(strings.TrimPrefix(line, ":retract"))
			pred, args, err := wfs.ParseFact(factSrc)
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				break
			}
			if err := sys.RetractFact(pred, args...); err != nil {
				fmt.Fprintln(out, "error:", err)
				break
			}
			retracted = append(retracted, retraction{pred: pred, args: args})
			fmt.Fprintln(out, "ok")
		case strings.HasPrefix(line, ":explain "):
			atomSrc := strings.TrimSpace(strings.TrimPrefix(line, ":explain"))
			tv, err := sys.TruthOf(atomSrc)
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				break
			}
			fmt.Fprintf(out, "%s is %s\n", atomSrc, tv)
			if proof, ok, err := sys.ExplainAtom(atomSrc); err != nil {
				fmt.Fprintln(out, "error:", err)
			} else if ok {
				fmt.Fprint(out, proof)
			}
		case strings.HasPrefix(line, ":wcheck "):
			atomSrc := strings.TrimSpace(strings.TrimPrefix(line, ":wcheck"))
			tv, stats, err := sys.WCheck(atomSrc)
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				break
			}
			fmt.Fprintf(out, "%s is %s (closure %d/%d atoms)\n",
				atomSrc, tv, stats.ClosureAtoms, stats.TotalAtoms)
		case strings.HasPrefix(line, "??"):
			vars, rows, err := sys.Select(strings.TrimPrefix(line, "??"))
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				break
			}
			fmt.Fprintln(out, strings.Join(vars, "\t"))
			for _, row := range rows {
				fmt.Fprintln(out, strings.Join(row, "\t"))
			}
			fmt.Fprintf(out, "(%d tuples)\n", len(rows))
		case line == ":trace on":
			tracing = true
			fmt.Fprintln(out, "tracing on")
		case line == ":trace off":
			tracing = false
			fmt.Fprintln(out, "tracing off")
		case line == ":trace":
			state := "off"
			if tracing {
				state = "on"
			}
			fmt.Fprintf(out, "tracing %s (use :trace on|off)\n", state)
		case line == ":timeout":
			if timeout > 0 {
				fmt.Fprintf(out, "timeout %s (use :timeout DURATION or :timeout off)\n", timeout)
			} else {
				fmt.Fprintln(out, "timeout off (use :timeout DURATION, e.g. :timeout 500ms)")
			}
		case strings.HasPrefix(line, ":timeout "):
			arg := strings.TrimSpace(strings.TrimPrefix(line, ":timeout"))
			if arg == "off" || arg == "0" {
				timeout = 0
				fmt.Fprintln(out, "timeout off")
				break
			}
			d, err := time.ParseDuration(arg)
			if err != nil || d < 0 {
				fmt.Fprintln(out, "error: :timeout wants a duration like 500ms or 2s, or off")
				break
			}
			timeout = d
			fmt.Fprintf(out, "timeout %s\n", d)
		case strings.HasPrefix(line, "?"):
			if tracing {
				ans, _, et, err := sys.TraceAnswer(line)
				if err != nil {
					fmt.Fprintln(out, "error:", err)
					break
				}
				fmt.Fprintln(out, ans)
				// Each traced query gets its own trace ID, in the same hex
				// form wfsd stamps on logs and flight-recorder entries, so
				// a REPL trace can be cited alongside server-side ones.
				fmt.Fprintf(out, "trace_id=%s\n", trace.MintContext().TraceIDString())
				fmt.Fprint(out, et.Format())
				break
			}
			ans, err := answerWithTimeout(sys, line, timeout)
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				break
			}
			fmt.Fprintln(out, ans)
		case strings.HasPrefix(line, ":"):
			fmt.Fprintln(out, "unknown command; :help for help")
		default:
			// A statement: rebuild the system with the new clause. This
			// keeps the REPL simple and the engine caches consistent.
			next := accumulated + "\n" + line
			ns, err := wfs.Load(next)
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				break
			}
			// A statement that re-asserts a previously retracted fact
			// cancels the pending retraction — the user's latest word
			// wins — instead of being silently deleted by the replay.
			// The line is parsed as a unit so compound lines ("p(a).
			// q(b).") cancel every fact they assert.
			if u, perr := parser.Parse(line); perr == nil {
				for _, rule := range u.Rules {
					if !rule.IsFact() {
						continue
					}
					for _, h := range rule.Head {
						args := make([]string, 0, len(h.Args))
						for _, a := range h.Args {
							if a.IsVar {
								args = nil
								break
							}
							args = append(args, a.Name)
						}
						if args == nil && len(h.Args) > 0 {
							continue
						}
						kept := retracted[:0]
						for _, r := range retracted {
							if r.pred != h.Pred || !slices.Equal(r.args, args) {
								kept = append(kept, r)
							}
						}
						retracted = kept
					}
				}
			}
			// Replay the surviving retractions: the rebuild resurrected
			// their facts from the accumulated source.
			for _, r := range retracted {
				if err := ns.RetractFact(r.pred, r.args...); err != nil {
					fmt.Fprintln(out, "warning: replaying retraction:", err)
				}
			}
			accumulated = next
			sys = ns
			fmt.Fprintln(out, "ok")
		}
		fmt.Fprint(out, "wfs> ")
	}
}

// answerWithTimeout answers one '?' query, cooperatively cancelled when
// the :timeout deadline (if any) expires mid-evaluation.
func answerWithTimeout(sys *wfs.System, query string, timeout time.Duration) (wfs.Truth, error) {
	if timeout <= 0 {
		return sys.Answer(query)
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return sys.AnswerCtx(ctx, query)
}
