package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestLintOneCleanProgram(t *testing.T) {
	var b strings.Builder
	ok, err := lintOne(&b, "test.dlg", `
		move(a,b). move(b,a).
		move(X,Y), not win(Y) -> win(X).
	`, false, false, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("clean program failed lint:\n%s", b.String())
	}
	out := b.String()
	for _, want := range []string{"chase terminates", "certificate: chase depth ≤ 1", "negation-cycle"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestLintOneErrorsFail(t *testing.T) {
	var b strings.Builder
	ok, err := lintOne(&b, "bad.dlg", `
		scientist(john).
		conferencePaper(X) -> article(X).
	`, false, false, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("program with unsatisfiable rule passed lint:\n%s", b.String())
	}
	if !strings.Contains(b.String(), "unsatisfiable-rule") {
		t.Errorf("output missing diagnostic:\n%s", b.String())
	}
}

func TestLintOneStrictPromotesWarnings(t *testing.T) {
	src := `
		a(1).
		a(X), not ghost(X) -> b(X).
	`
	var b strings.Builder
	if ok, _ := lintOne(&b, "w.dlg", src, false, false, false, false); !ok {
		t.Fatal("warnings should pass without -strict")
	}
	if ok, _ := lintOne(&b, "w.dlg", src, false, true, false, false); ok {
		t.Fatal("warnings should fail under -strict")
	}
}

func TestLintOneCompileErrorFails(t *testing.T) {
	var b strings.Builder
	ok, err := lintOne(&b, "syntax.dlg", "p(X ->", false, false, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("syntax error passed lint")
	}
}

func TestLintOneJSON(t *testing.T) {
	var b strings.Builder
	ok, err := lintOne(&b, "j.dlg", "p(1). p(X) -> q(X).", true, false, false, false)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	var rep struct {
		File        string `json:"file"`
		Terminates  bool   `json:"terminates"`
		Certificate *struct {
			DepthBound int `json:"depth_bound"`
		} `json:"certificate"`
	}
	if err := json.Unmarshal([]byte(b.String()), &rep); err != nil {
		t.Fatalf("invalid JSON %q: %v", b.String(), err)
	}
	if rep.File != "j.dlg" || !rep.Terminates || rep.Certificate == nil || rep.Certificate.DepthBound != 1 {
		t.Errorf("report = %+v", rep)
	}
}

func TestCollectWalksDirectories(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "sub")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{
		filepath.Join(dir, "a.dlg"),
		filepath.Join(sub, "b.dlg"),
		filepath.Join(dir, "ignore.txt"),
	} {
		if err := os.WriteFile(f, []byte("p(1).\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	files, err := collect([]string{dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 {
		t.Fatalf("collect found %v, want the two .dlg files", files)
	}
}
