// wfslint runs the static program analysis (repro/internal/analysis)
// over guarded normal Datalog± source files without evaluating them:
// termination classification, chase-termination certificates with depth
// bounds, and line-accurate diagnostics (dead rules, underivable
// predicates, negation cycles, vacuous negation, singleton variables).
//
// Usage:
//
//	wfslint [-json] [-strict] [-v] [path ...]
//
// Each path may be a .dlg file or a directory (searched recursively for
// .dlg files); with no paths, the program is read from stdin. The exit
// status is 1 when any file has Error diagnostics (or Warning
// diagnostics under -strict), 2 on usage or IO errors, 0 otherwise —
// suitable as a CI gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/atom"
	"repro/internal/program"
	"repro/internal/term"
)

func main() {
	var (
		asJSON  = flag.Bool("json", false, "emit one JSON report object per file")
		strict  = flag.Bool("strict", false, "treat warnings as fatal (exit 1)")
		verbose = flag.Bool("v", false, "list per-rule facts and per-predicate depth bounds")
	)
	flag.Parse()

	files, err := collect(flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "wfslint:", err)
		os.Exit(2)
	}

	failed := false
	if len(files) == 0 {
		src, err := io.ReadAll(os.Stdin)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wfslint:", err)
			os.Exit(2)
		}
		ok, err := lintOne(os.Stdout, "<stdin>", string(src), *asJSON, *strict, *verbose, false)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wfslint:", err)
			os.Exit(2)
		}
		failed = !ok
	}
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wfslint:", err)
			os.Exit(2)
		}
		ok, err := lintOne(os.Stdout, f, string(src), *asJSON, *strict, *verbose, len(files) > 1)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wfslint:", err)
			os.Exit(2)
		}
		if !ok {
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// collect expands the path arguments: files are taken as-is, directories
// are walked recursively for *.dlg files. The result is sorted for
// deterministic output.
func collect(args []string) ([]string, error) {
	var files []string
	for _, a := range args {
		info, err := os.Stat(a)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			files = append(files, a)
			continue
		}
		err = filepath.WalkDir(a, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(path, ".dlg") {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(files)
	return files, nil
}

// lintOne compiles and analyzes one source unit, rendering the report to
// w. It returns ok=false when the file should fail the lint run (compile
// error, Error diagnostics, or Warning diagnostics under strict) and a
// non-nil error only for rendering failures.
func lintOne(w io.Writer, name, src string, asJSON, strict, verbose, header bool) (bool, error) {
	st := atom.NewStore(term.NewStore())
	prog, db, queries, err := program.CompileText(src, st)
	if err != nil {
		if asJSON {
			if encErr := json.NewEncoder(w).Encode(map[string]string{
				"file": name, "compile_error": err.Error(),
			}); encErr != nil {
				return false, encErr
			}
		} else {
			fmt.Fprintf(w, "%s: %v\n", name, err)
		}
		return false, nil
	}
	rep := analysis.Analyze(prog, db, queries)
	if asJSON {
		if err := json.NewEncoder(w).Encode(struct {
			File string `json:"file"`
			*analysis.Report
		}{File: name, Report: rep}); err != nil {
			return false, err
		}
	} else {
		if header {
			fmt.Fprintf(w, "== %s ==\n", name)
		}
		fmt.Fprint(w, rep.Format(verbose))
	}
	nerr, nwarn, _ := rep.Counts()
	return nerr == 0 && (!strict || nwarn == 0), nil
}
