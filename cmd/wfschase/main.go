// wfschase dumps the bounded guarded chase forest F+(P) of a program
// (paper §2.5): the node tree, per-atom depths/levels, and the extracted
// ground rule instances.
//
// Usage:
//
//	wfschase [-depth N] [-max-nodes N] [-instances] file.dlg
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/atom"
	"repro/internal/chase"
	"repro/internal/program"
	"repro/internal/term"
)

func main() {
	var (
		depth     = flag.Int("depth", 4, "chase depth bound")
		maxNodes  = flag.Int("max-nodes", 500, "forest node cap for the tree dump")
		instances = flag.Bool("instances", false, "print ground rule instances")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: wfschase [flags] program.dlg")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	st := atom.NewStore(term.NewStore())
	prog, db, _, err := program.CompileText(string(src), st)
	if err != nil {
		fatal(err)
	}
	res := chase.Run(prog, db, chase.Options{MaxDepth: *depth, MaxAtoms: 4_000_000})
	fmt.Println("chase:", res.ComputeStats())

	forest := res.BuildForest(*depth, *maxNodes)
	fmt.Printf("forest (%d nodes%s):\n", len(forest.Nodes), truncNote(forest.Truncated))
	fmt.Print(forest.Dump())

	if *instances {
		fmt.Println("ground instances:")
		for i := range res.Instances {
			in := &res.Instances[i]
			var parts []string
			for _, a := range in.Pos {
				parts = append(parts, st.String(a))
			}
			for _, a := range in.Neg {
				parts = append(parts, "not "+st.String(a))
			}
			fmt.Printf("  %s -> %s\n", strings.Join(parts, ", "), st.String(in.Head))
		}
	}
}

func truncNote(t bool) string {
	if t {
		return ", truncated"
	}
	return ""
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wfschase:", err)
	os.Exit(1)
}
