// Command wfsd serves the WFS engine over HTTP/JSON: named sessions of
// loaded guarded normal Datalog± programs, incremental fact assertion,
// NBCQ answering with adaptive deepening, non-Boolean selection,
// ground-atom truth and proofs, and engine statistics — with an LRU
// answer cache and bounded request concurrency in front.
//
// Usage:
//
//	wfsd [-addr :8080] [-max-sessions N] [-cache-size N]
//	     [-max-concurrent N] [-preload prog.dl [-preload-name default]]
//
// Endpoints are listed in the package documentation of internal/server
// and in README.md. SIGINT/SIGTERM trigger a graceful drain.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	wfs "repro"
	"repro/internal/server"
)

func main() {
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		maxSessions   = flag.Int("max-sessions", server.DefaultMaxSessions, "max live sessions (-1 = unlimited)")
		cacheSize     = flag.Int("cache-size", server.DefaultCacheSize, "answer cache entries (-1 = disabled)")
		maxConcurrent = flag.Int("max-concurrent", server.DefaultMaxConcurrent, "max in-flight requests (-1 = unlimited)")
		preload       = flag.String("preload", "", "program file to load at startup")
		preloadName   = flag.String("preload-name", "default", "session name for -preload")
		drainTimeout  = flag.Duration("drain-timeout", 15*time.Second, "graceful shutdown deadline")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "wfsd: ", log.LstdFlags)

	srv := server.New(server.Config{
		MaxSessions:   *maxSessions,
		CacheSize:     *cacheSize,
		MaxConcurrent: *maxConcurrent,
		Logger:        logger,
	})
	if *preload != "" {
		src, err := os.ReadFile(*preload)
		if err != nil {
			logger.Fatalf("preload: %v", err)
		}
		if _, err := srv.Registry().Create(*preloadName, string(src), wfs.Options{}); err != nil {
			logger.Fatalf("preload %s: %v", *preload, err)
		}
		logger.Printf("preloaded %s as session %q", *preload, *preloadName)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		logger.Fatalf("serve: %v", err)
	case <-ctx.Done():
		stop()
		logger.Printf("shutting down (waiting up to %s for in-flight requests)", *drainTimeout)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Printf("shutdown: %v", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "wfsd: bye")
	}
}
