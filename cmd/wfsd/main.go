// Command wfsd serves the WFS engine over HTTP/JSON: named sessions of
// loaded guarded normal Datalog± programs, incremental fact assertion,
// NBCQ answering with adaptive deepening, non-Boolean selection,
// ground-atom truth and proofs, and engine statistics — with an LRU
// answer cache and bounded request concurrency in front.
//
// Usage:
//
//	wfsd [-addr :8080] [-max-sessions N] [-cache-size N]
//	     [-max-concurrent N] [-max-queue-wait 5s] [-slow-query 0]
//	     [-query-timeout 0] [-access-log] [-pprof-addr :6060]
//	     [-trace-buffer N] [-data-dir DIR] [-checkpoint-every N]
//	     [-fsync=true] [-wal-breaker-threshold 3] [-wal-probe-interval 2s]
//	     [-preload prog.dl [-preload-name default]]
//
// Resource governance: -query-timeout bounds every uncached query
// evaluation with a server-side deadline — a query still running when it
// expires is cooperatively cancelled (504; or, with ?partial=1, degraded
// to the deepest completed approximation's answer marked inexact), and a
// client that disconnects mid-evaluation cancels its work the same way
// (503). With durability on, -wal-breaker-threshold consecutive failed
// log appends trip a session into read-only mode: mutations answer 503
// while reads keep serving, and a background probe every
// -wal-probe-interval re-enables writes once the disk heals.
//
// Durability: -data-dir enables a per-session write-ahead log of
// mutation deltas plus periodic snapshot checkpoints under DIR. Every
// mutation is serialized (and, with -fsync, synced) to disk before it
// commits, sessions persisted by a previous process are recovered at
// startup — a SIGKILLed server restarts to the exact pre-crash epoch,
// with torn final records dropped — and graceful shutdown writes final
// checkpoints so a clean restart replays zero records.
// -checkpoint-every bounds the replay tail in records.
//
// Observability: GET /metrics serves Prometheus text metrics,
// ?trace=1 on the query endpoint returns a per-phase evaluation trace,
// -slow-query logs uncached queries over the threshold with their phase
// breakdown, and -pprof-addr serves net/http/pprof on a separate
// listener (off by default; keep it private). Every request carries a
// W3C traceparent identity (continued from the caller's header or
// minted); completed requests feed an in-memory flight recorder of
// -trace-buffer entries with tail-based sampling (errors, slow queries,
// and ?trace=1 requests are always kept), browsable at GET /v1/traces
// and GET /v1/traces/{id}.
//
// Endpoints are listed in the package documentation of internal/server
// and in README.md. SIGINT/SIGTERM trigger a graceful drain.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers on DefaultServeMux, served only via -pprof-addr
	"os"
	"os/signal"
	"syscall"
	"time"

	wfs "repro"
	"repro/internal/server"
	"repro/internal/wal"
)

func main() {
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		maxSessions   = flag.Int("max-sessions", server.DefaultMaxSessions, "max live sessions (-1 = unlimited)")
		cacheSize     = flag.Int("cache-size", server.DefaultCacheSize, "answer cache entries (-1 = disabled)")
		maxConcurrent = flag.Int("max-concurrent", server.DefaultMaxConcurrent, "max in-flight requests (-1 = unlimited)")
		maxQueueWait  = flag.Duration("max-queue-wait", server.DefaultMaxQueueWait, "max wait for a concurrency slot before 429 (-1s = unbounded)")
		slowQuery     = flag.Duration("slow-query", 0, "log uncached queries slower than this with phase breakdown (0 = off)")
		queryTimeout  = flag.Duration("query-timeout", 0, "server-side deadline per query evaluation: 504 on expiry, or a degraded answer with ?partial=1 (0 = off)")
		accessLog     = flag.Bool("access-log", false, "log one structured line per request (includes trace_id)")
		traceBuffer   = flag.Int("trace-buffer", server.DefaultTraceBufferSize, "flight-recorder capacity in retained request traces (-1 = disabled)")
		pprofAddr     = flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty = off)")
		preload       = flag.String("preload", "", "program file to load at startup")
		preloadName   = flag.String("preload-name", "default", "session name for -preload")
		drainTimeout  = flag.Duration("drain-timeout", 15*time.Second, "graceful shutdown deadline")
		dataDir       = flag.String("data-dir", "", "enable durability: write-ahead log + checkpoints under this directory (empty = in-memory only)")
		ckptEvery     = flag.Int("checkpoint-every", wal.DefaultCheckpointRecords, "checkpoint a session after this many logged records (-1 = only on byte threshold/shutdown)")
		ckptBytes     = flag.Int64("checkpoint-bytes", wal.DefaultCheckpointBytes, "checkpoint a session after this many logged bytes (-1 = only on record threshold/shutdown)")
		fsync         = flag.Bool("fsync", true, "fsync the write-ahead log on every mutation (durable against power loss, not just crashes)")
		walBreaker    = flag.Int("wal-breaker-threshold", server.DefaultWALFailureThreshold, "consecutive WAL append failures before a session goes read-only (-1 = never)")
		walProbe      = flag.Duration("wal-probe-interval", server.DefaultWALProbeInterval, "how often a read-only session probes its log directory for healing")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "wfsd: ", log.LstdFlags)

	cfg := server.Config{
		MaxSessions:         *maxSessions,
		CacheSize:           *cacheSize,
		MaxConcurrent:       *maxConcurrent,
		MaxQueueWait:        *maxQueueWait,
		SlowQueryThreshold:  *slowQuery,
		QueryTimeout:        *queryTimeout,
		TraceBufferSize:     *traceBuffer,
		WALFailureThreshold: *walBreaker,
		WALProbeInterval:    *walProbe,
		Logger:              logger,
	}
	if *accessLog {
		cfg.AccessLogger = log.New(os.Stderr, "wfsd.access: ", log.LstdFlags)
	}
	srv := server.New(cfg)
	if *dataDir != "" {
		st, err := srv.OpenWAL(*dataDir, wal.Options{
			Fsync:             *fsync,
			CheckpointRecords: *ckptEvery,
			CheckpointBytes:   *ckptBytes,
		})
		if err != nil {
			logger.Fatalf("wal: %v", err)
		}
		logger.Printf("wal: data-dir=%s fsync=%v — recovered %d sessions (%d records replayed, %d torn tails repaired, %d skipped) in %s",
			*dataDir, *fsync, st.Sessions, st.ReplayedRecords, st.TornTails, st.Skipped, st.Duration.Round(time.Millisecond))
	}
	if *preload != "" {
		src, err := os.ReadFile(*preload)
		if err != nil {
			logger.Fatalf("preload: %v", err)
		}
		var exists *server.ErrSessionExists
		if _, err := srv.Registry().Create(*preloadName, string(src), wfs.Options{}); errors.As(err, &exists) && *dataDir != "" {
			// Recovery already rebuilt this session from its log; the
			// durable state (including mutations since the original
			// preload) wins over re-loading the file.
			logger.Printf("preload: session %q recovered from data dir, keeping recovered state", *preloadName)
		} else if err != nil {
			logger.Fatalf("preload %s: %v", *preload, err)
		} else {
			logger.Printf("preloaded %s as session %q", *preload, *preloadName)
		}
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	if *pprofAddr != "" {
		// The blank pprof import registered its handlers on
		// http.DefaultServeMux; serving that mux on a second, private
		// listener keeps profiling off the public API surface.
		go func() {
			logger.Printf("pprof listening on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				logger.Printf("pprof: %v", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		logger.Fatalf("serve: %v", err)
	case <-ctx.Done():
		stop()
		logger.Printf("shutting down (waiting up to %s for in-flight requests)", *drainTimeout)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Printf("shutdown: %v", err)
			os.Exit(1)
		}
		// After the drain: final checkpoints + fsync so a clean restart
		// replays zero records.
		if err := srv.Close(); err != nil {
			logger.Printf("shutdown: wal: %v", err)
			os.Exit(1)
		}
		if *dataDir != "" {
			logger.Printf("wal: final checkpoints written")
		}
		fmt.Fprintln(os.Stderr, "wfsd: bye")
	}
}
