package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"
)

// TestCrashRecoveryEndToEnd is the full-fidelity durability check: build
// the real wfsd binary, run it with a data dir, SIGKILL it in the middle
// of a mutation workload, restart it over the same directory, and verify
// the recovered session reaches the exact epoch of the last acknowledged
// mutation (or later, if unacknowledged in-flight records made it to
// disk) with every acknowledged fact present and the semantics intact.
func TestCrashRecoveryEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real wfsd process")
	}

	bin := filepath.Join(t.TempDir(), "wfsd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	dataDir := t.TempDir()
	addr := freeAddr(t)
	base := "http://" + addr

	start := func() *exec.Cmd {
		cmd := exec.Command(bin, "-addr", addr, "-data-dir", dataDir)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("start wfsd: %v", err)
		}
		t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait() })
		waitHealthy(t, base)
		return cmd
	}

	// First life: create a session and hammer mutations until the kill.
	cmd := start()
	postJSON(t, base+"/v1/sessions", map[string]any{
		"name":    "w",
		"program": "move(X,Y), not win(Y) -> win(X). move(a,b). move(b,a). move(b,c).",
	}, nil)

	var lastAcked atomic.Uint64
	var attempts atomic.Uint64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			attempts.Add(1)
			var res struct {
				Epoch uint64 `json:"epoch"`
			}
			err := tryPostJSON(base+"/v1/sessions/w/facts", map[string]any{
				"facts": []map[string]any{{"pred": "move", "args": []string{"c", fmt.Sprintf("x%d", i)}}},
			}, &res)
			if err != nil {
				return // the process died under us — expected
			}
			lastAcked.Store(res.Epoch)
		}
	}()

	// Let the workload run, then SIGKILL mid-flight: no drain, no final
	// checkpoint, possibly a torn record at the log tail.
	for lastAcked.Load() < 25 {
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatalf("kill: %v", err)
	}
	cmd.Wait()
	<-done
	acked := lastAcked.Load()
	if acked < 25 {
		t.Fatalf("only %d acknowledged mutations before the kill", acked)
	}

	// Second life: recover from the same data dir.
	start()
	var info struct {
		Epoch uint64 `json:"epoch"`
		Facts int    `json:"facts"`
	}
	getJSON(t, base+"/v1/sessions/w", &info)
	// Every acknowledged mutation was fsynced before its 200, so the
	// recovered epoch is at least the last acked one; it may exceed it by
	// in-flight records that reached disk without their response being
	// read, but never by more than the requests actually issued.
	if info.Epoch < acked {
		t.Fatalf("recovered epoch %d < last acknowledged %d: acknowledged mutations lost", info.Epoch, acked)
	}
	if max := attempts.Load(); info.Epoch > max {
		t.Fatalf("recovered epoch %d > %d issued mutations", info.Epoch, max)
	}
	if want := 3 + int(info.Epoch); info.Facts != want {
		t.Fatalf("recovered facts %d, want %d (3 program facts + one per epoch)", info.Facts, want)
	}
	// Acknowledged facts are present and the three-valued semantics hold:
	// c now has winning moves to dead-end nodes.
	for atom, want := range map[string]string{
		fmt.Sprintf("move(c,x%d)", acked-1): "true",
		"win(c)":                            "true",
		"win(b)":                            "undefined",
	} {
		var tr struct {
			Truth string `json:"truth"`
		}
		postJSON(t, base+"/v1/sessions/w/truth", map[string]any{"atom": atom}, &tr)
		if tr.Truth != want {
			t.Errorf("recovered truth of %s = %s, want %s", atom, tr.Truth, want)
		}
	}

	// Third life: the recovered server keeps accepting durable mutations.
	var res struct {
		Epoch uint64 `json:"epoch"`
	}
	postJSON(t, base+"/v1/sessions/w/facts", map[string]any{
		"facts": []map[string]any{{"pred": "move", "args": []string{"c", "postcrash"}}},
	}, &res)
	if res.Epoch != info.Epoch+1 {
		t.Fatalf("post-recovery epoch %d, want %d", res.Epoch, info.Epoch+1)
	}
}

// TestGracefulShutdownReplaysZero: SIGTERM drains and writes final
// checkpoints, so the next start replays zero records — the clean-stop
// half of the durability contract, through the real signal path.
func TestGracefulShutdownReplaysZero(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and restarts a real wfsd process")
	}
	bin := filepath.Join(t.TempDir(), "wfsd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	dataDir := t.TempDir()
	addr := freeAddr(t)
	base := "http://" + addr

	var stderr bytes.Buffer
	cmd := exec.Command(bin, "-addr", addr, "-data-dir", dataDir)
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start wfsd: %v", err)
	}
	t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait() })
	waitHealthy(t, base)
	postJSON(t, base+"/v1/sessions", map[string]any{
		"name":    "w",
		"program": "move(X,Y), not win(Y) -> win(X). move(a,b). move(b,a). move(b,c).",
	}, nil)
	for i := 0; i < 5; i++ {
		postJSON(t, base+"/v1/sessions/w/facts", map[string]any{
			"facts": []map[string]any{{"pred": "move", "args": []string{"c", fmt.Sprintf("x%d", i)}}},
		}, nil)
	}
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatalf("SIGINT: %v", err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("wfsd exited uncleanly: %v\n%s", err, stderr.String())
	}
	if !bytes.Contains(stderr.Bytes(), []byte("final checkpoints written")) {
		t.Fatalf("shutdown log missing final-checkpoint line:\n%s", stderr.String())
	}

	cmd2 := exec.Command(bin, "-addr", addr, "-data-dir", dataDir)
	cmd2.Stderr = os.Stderr
	if err := cmd2.Start(); err != nil {
		t.Fatalf("restart wfsd: %v", err)
	}
	t.Cleanup(func() { cmd2.Process.Kill(); cmd2.Wait() })
	waitHealthy(t, base)
	var stats struct {
		WAL struct {
			RecoveredSessions int `json:"recovered_sessions"`
			ReplayedRecords   int `json:"replayed_records"`
		} `json:"wal"`
	}
	getJSON(t, base+"/v1/stats", &stats)
	if stats.WAL.RecoveredSessions != 1 || stats.WAL.ReplayedRecords != 0 {
		t.Fatalf("clean restart: recovered %d sessions, replayed %d records, want 1/0",
			stats.WAL.RecoveredSessions, stats.WAL.ReplayedRecords)
	}
	var info struct {
		Epoch uint64 `json:"epoch"`
	}
	getJSON(t, base+"/v1/sessions/w", &info)
	if info.Epoch != 5 {
		t.Fatalf("recovered epoch %d, want 5", info.Epoch)
	}
}

// freeAddr reserves a loopback port and releases it for the child
// process. The tiny race with other tests is acceptable here.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func waitHealthy(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("wfsd did not become healthy in time")
}

func tryPostJSON(url string, body, out any) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}

func postJSON(t *testing.T, url string, body, out any) {
	t.Helper()
	if err := tryPostJSON(url, body, out); err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}
