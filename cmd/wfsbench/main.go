// wfsbench regenerates the experiment tables E1–E9 that reproduce the
// paper's theorems and worked examples (see DESIGN.md §5 for the index and
// EXPERIMENTS.md for recorded paper-vs-measured results).
//
// Usage:
//
//	wfsbench [-quick] [E1 E4 ...]     # default: all experiments
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "smaller sweeps")
	flag.Parse()
	ids := flag.Args()
	if len(ids) == 0 {
		ids = bench.Experiments
	}
	for _, id := range ids {
		if err := bench.Run(id, os.Stdout, *quick); err != nil {
			fmt.Fprintln(os.Stderr, "wfsbench:", err)
			os.Exit(1)
		}
	}
}
