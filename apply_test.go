package wfs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// gameSrc (the win-move oracle) is declared in snapshot_test.go.

func loadGame(t *testing.T) *System {
	t.Helper()
	sys, err := Load(gameSrc)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func wantTruth(t *testing.T, sys *System, atomSrc string, want Truth) {
	t.Helper()
	got, err := sys.TruthOf(atomSrc)
	if err != nil {
		t.Fatalf("TruthOf(%s): %v", atomSrc, err)
	}
	if got != want {
		t.Errorf("TruthOf(%s) = %v, want %v", atomSrc, got, want)
	}
}

// TestApplySemantics drives the canonical win-move oracle through a
// delta round-trip: adding move(c,d) flips win(c) true and win(b)
// undefined; retracting it restores the original model.
func TestApplySemantics(t *testing.T) {
	sys := loadGame(t)
	wantTruth(t, sys, "win(b)", True)
	wantTruth(t, sys, "win(c)", False)
	e0 := sys.Epoch()

	if err := sys.Apply(NewDelta().Add("move", "c", "d")); err != nil {
		t.Fatal(err)
	}
	if sys.Epoch() != e0+1 {
		t.Fatalf("epoch = %d, want %d (one bump per batch)", sys.Epoch(), e0+1)
	}
	wantTruth(t, sys, "win(c)", True)
	wantTruth(t, sys, "win(b)", Undefined)

	if err := sys.Apply(NewDelta().Retract("move", "c", "d")); err != nil {
		t.Fatal(err)
	}
	wantTruth(t, sys, "win(b)", True)
	wantTruth(t, sys, "win(c)", False)
	if n := sys.NumFacts(); n != 3 {
		t.Errorf("NumFacts = %d, want 3 after round-trip", n)
	}
}

// TestApplyBatchIsOneEpoch: a mixed batch commits under a single epoch
// bump and both mutations land together.
func TestApplyBatchIsOneEpoch(t *testing.T) {
	sys := loadGame(t)
	e0 := sys.Epoch()
	d := NewDelta().Add("move", "c", "d").Retract("move", "b", "c")
	if err := sys.Apply(d); err != nil {
		t.Fatal(err)
	}
	if sys.Epoch() != e0+1 {
		t.Errorf("epoch = %d, want %d", sys.Epoch(), e0+1)
	}
	wantTruth(t, sys, "win(c)", True)      // from the addition
	wantTruth(t, sys, "win(b)", Undefined) // the a↔b cycle is a draw without b→c
}

// TestApplyAllOrNothing: any invalid entry rejects the whole batch with
// the database, the epoch, and the model untouched.
func TestApplyAllOrNothing(t *testing.T) {
	sys := loadGame(t)
	e0 := sys.Epoch()
	cases := map[string]*Delta{
		"unknown-retract-pred": NewDelta().Add("move", "c", "d").Retract("nosuch", "x"),
		"not-a-db-fact":        NewDelta().Add("move", "c", "d").Retract("move", "z", "z"),
		"derived-not-edb":      NewDelta().Retract("win", "b"),
		"arity-mismatch-add":   NewDelta().Add("move", "only-one"),
		"retract-arity":        NewDelta().Retract("move", "a"),
		// The conflicting fact must be IN the database, or retraction
		// validation rejects the batch before the clash check runs.
		"add-retract-conflict": NewDelta().Add("move", "a", "b").Retract("move", "a", "b"),
	}
	for name, d := range cases {
		t.Run(name, func(t *testing.T) {
			if err := sys.Apply(d); err == nil {
				t.Fatal("invalid delta accepted")
			}
			if sys.Epoch() != e0 {
				t.Fatalf("failed delta bumped the epoch")
			}
			if sys.NumFacts() != 3 {
				t.Fatalf("failed delta mutated the database")
			}
			wantTruth(t, sys, "win(b)", True)
		})
	}
	// The empty delta is a no-op, not an error.
	if err := sys.Apply(NewDelta()); err != nil || sys.Epoch() != e0 {
		t.Errorf("empty delta: err=%v epoch=%d, want nil/%d", err, sys.Epoch(), e0)
	}
}

// TestRetractRemovesAllOccurrences: the database is a multiset; a
// retraction removes every occurrence of the fact.
func TestRetractRemovesAllOccurrences(t *testing.T) {
	sys := loadGame(t)
	if err := sys.AddFact("move", "b", "c"); err != nil { // now twice in the db
		t.Fatal(err)
	}
	if sys.NumFacts() != 4 {
		t.Fatalf("NumFacts = %d, want 4", sys.NumFacts())
	}
	if err := sys.RetractFact("move", "b", "c"); err != nil {
		t.Fatal(err)
	}
	if sys.NumFacts() != 2 {
		t.Errorf("NumFacts = %d, want 2 (both occurrences gone)", sys.NumFacts())
	}
	wantTruth(t, sys, "win(b)", Undefined) // only the a↔b cycle remains
}

// TestSnapshotRebaseAcrossEpochs: materialized rungs carry across
// mutations — and answers on the rebased snapshot match a cold system
// loaded with the final database, including queries that name constants
// interned after the original snapshot.
func TestSnapshotRebaseAcrossEpochs(t *testing.T) {
	sys := loadGame(t)
	q, err := Prepare("? win(b).")
	if err != nil {
		t.Fatal(err)
	}
	snap0, err := sys.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if ans, err := snap0.Answer(q); err != nil || ans != True {
		t.Fatalf("epoch-0 win(b) = %v (%v)", ans, err)
	}
	// Three mutations, snapshots taken in between so the rebase chain is
	// exercised (epoch 2 rebases onto epoch 1's rebased rungs).
	for i, f := range [][2]string{{"c", "d"}, {"d", "e"}, {"e", "f"}} {
		if err := sys.AddFact("move", f[0], f[1]); err != nil {
			t.Fatal(err)
		}
		snap, err := sys.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if snap.Epoch() != uint64(i+1) {
			t.Fatalf("snapshot epoch = %d, want %d", snap.Epoch(), i+1)
		}
		// The prepared query (compiled at epoch 0) reuses across epochs.
		if _, err := snap.Answer(q); err != nil {
			t.Fatal(err)
		}
		// A query naming the just-added constant compiles against the
		// rebased rung's older store chain via a per-call overlay.
		qNew, err := Prepare(fmt.Sprintf("? win(%s).", f[0]))
		if err != nil {
			t.Fatal(err)
		}
		got, err := snap.Answer(qNew)
		if err != nil {
			t.Fatal(err)
		}
		cold, err := Load(gameSrc)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j <= i; j++ {
			edges := [][2]string{{"c", "d"}, {"d", "e"}, {"e", "f"}}
			if err := cold.AddFact("move", edges[j][0], edges[j][1]); err != nil {
				t.Fatal(err)
			}
		}
		want, err := cold.Answer(fmt.Sprintf("? win(%s).", f[0]))
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("epoch %d: win(%s) = %v, want %v (cold)", i+1, f[0], got, want)
		}
	}
	// The epoch-0 snapshot still serves its own consistent view.
	if ans, err := snap0.Answer(q); err != nil || ans != True {
		t.Errorf("stale snapshot win(b) = %v (%v), want true", ans, err)
	}
}

// TestSnapshotChainCompacts: after maxSnapshotChain rebased epochs the
// next snapshot rebuilds fresh, resetting the chain counter.
func TestSnapshotChainCompacts(t *testing.T) {
	sys := loadGame(t)
	for i := 0; i < maxSnapshotChain+2; i++ {
		if _, err := sys.Snapshot(); err != nil {
			t.Fatal(err)
		}
		if err := sys.AddFact("move", "c", fmt.Sprintf("x%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := sys.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.chain > maxSnapshotChain {
		t.Errorf("chain = %d, want ≤ %d", snap.chain, maxSnapshotChain)
	}
	wantTruth(t, sys, "win(c)", True)
}

// TestConcurrentApplyAndReads is the -race satellite: writers stream
// deltas (adds and retracts) while readers answer prepared queries from
// whatever snapshot is current and from deliberately stale ones.
func TestConcurrentApplyAndReads(t *testing.T) {
	sys := loadGame(t)
	q, err := Prepare("? win(b).")
	if err != nil {
		t.Fatal(err)
	}
	stale, err := sys.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	const writers, readers, ops = 2, 4, 30
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				tgt := fmt.Sprintf("w%d_%d", w, i)
				if err := sys.Apply(NewDelta().Add("move", "c", tgt)); err != nil {
					t.Errorf("apply: %v", err)
					return
				}
				if err := sys.Apply(NewDelta().Retract("move", "c", tgt)); err != nil {
					t.Errorf("retract: %v", err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				snap, err := sys.Snapshot()
				if err != nil {
					t.Errorf("snapshot: %v", err)
					return
				}
				if _, err := snap.Answer(q); err != nil {
					t.Errorf("answer: %v", err)
					return
				}
				if ans, err := stale.Answer(q); err != nil || ans != True {
					t.Errorf("stale answer = %v (%v)", ans, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	wantTruth(t, sys, "win(b)", True) // every delta round-tripped
}

// TestParseFact covers the textual fact syntax used by the REPL and CLI
// retraction commands.
func TestParseFact(t *testing.T) {
	pred, args, err := ParseFact("move(a, b).")
	if err != nil || pred != "move" || len(args) != 2 || args[0] != "a" || args[1] != "b" {
		t.Errorf("ParseFact = %s(%v), %v", pred, args, err)
	}
	for _, bad := range []string{"move(X, b).", "move(a), q(b).", "not p(a).", "p(", ""} {
		if _, _, err := ParseFact(bad); err == nil {
			t.Errorf("ParseFact(%q) accepted", bad)
		}
	}
}

// TestFailedApplyDoesNotPoisonSchema: a delta that fails validation must
// not commit schema state either — a new predicate first seen in the
// failed batch stays uninterned, so its arity is not fixed by the
// failure.
func TestFailedApplyDoesNotPoisonSchema(t *testing.T) {
	sys := loadGame(t)
	// q is unknown; the batch declares it at arity 1 then 2 → rejected.
	if err := sys.Apply(NewDelta().Add("q", "a").Add("q", "a", "b")); err == nil {
		t.Fatal("conflicting new-predicate arities accepted")
	}
	// The predicate must still be free: a clean q/2 delta succeeds.
	if err := sys.Apply(NewDelta().Add("q", "x", "y")); err != nil {
		t.Fatalf("predicate poisoned by failed delta: %v", err)
	}
	// Same through LoadCSV: a ragged stream must not intern the pred.
	sys2 := loadGame(t)
	if _, err := sys2.LoadCSV("r", strings.NewReader("a, b\nragged\n")); err == nil {
		t.Fatal("ragged CSV accepted")
	}
	if err := sys2.AddFact("r", "only"); err != nil {
		t.Fatalf("predicate poisoned by failed CSV load: %v", err)
	}
}

// TestConflictingDeltaDoesNotPoisonSchema: the add/retract clash is
// detected before anything interns, so a new predicate riding in the
// rejected batch stays uninterned.
func TestConflictingDeltaDoesNotPoisonSchema(t *testing.T) {
	sys := loadGame(t)
	d := NewDelta().Add("brandnew", "a").Add("move", "a", "b").Retract("move", "a", "b")
	if err := sys.Apply(d); err == nil {
		t.Fatal("add/retract conflict accepted")
	}
	if err := sys.Apply(NewDelta().Add("brandnew", "x", "y")); err != nil {
		t.Fatalf("predicate poisoned by conflicting delta: %v", err)
	}
}
