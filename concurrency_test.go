package wfs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestSystemConcurrentUse hammers one System from many goroutines mixing
// reads (Answer, Select, TruthOf, Stats) with writes (AddFact). Run under
// -race (as CI does) this guards the serialization contract documented on
// System: the old lazy `s.engine = nil` pattern raced here.
func TestSystemConcurrentUse(t *testing.T) {
	sys, err := Load(`
		move(a,b). move(b,a). move(b,c).
		move(X,Y), not win(Y) -> win(X).
	`)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 100)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				switch g % 4 {
				case 0:
					if g == 0 && i%4 == 3 {
						if err := sys.AddFact("move", fmt.Sprintf("n%d", i), "c"); err != nil {
							errs <- err
						}
						continue
					}
					if tv, err := sys.Answer("win(b)"); err != nil {
						errs <- err
					} else if tv != True {
						errs <- fmt.Errorf("win(b) = %v, want true", tv)
					}
				case 1:
					if _, _, err := sys.Select("? win(X)."); err != nil {
						errs <- err
					}
				case 2:
					if _, err := sys.TruthOf("win(c)"); err != nil {
						errs <- err
					}
				default:
					st := sys.Stats()
					if st.Facts < 3 {
						errs <- fmt.Errorf("stats facts = %d, want ≥ 3", st.Facts)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if sys.Epoch() == 0 {
		t.Errorf("epoch never advanced despite writes")
	}
}

// TestSnapshotReadersDuringWrites pins the snapshot contract under -race:
// readers holding a stale snapshot keep getting the same answers while a
// writer interleaves AddFact calls, readers grabbing fresh snapshots see
// monotonically advancing epochs, and nothing races.
func TestSnapshotReadersDuringWrites(t *testing.T) {
	sys, err := Load(`
		move(a,b). move(b,a). move(b,c).
		move(X,Y), not win(Y) -> win(X).
	`)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Prepare("win(b)")
	if err != nil {
		t.Fatal(err)
	}
	stale, err := sys.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	want, err := stale.Answer(q)
	if err != nil {
		t.Fatal(err)
	}

	const writers, readers, iters = 2, 6, 20
	var wg sync.WaitGroup
	errs := make(chan error, (writers+readers)*iters)

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// New leaf nodes only: win(b) stays true in every epoch,
				// so fresh-snapshot answers are checkable below.
				if err := sys.AddFact("move", fmt.Sprintf("w%d_%d", w, i), "c"); err != nil {
					errs <- err
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var lastEpoch uint64
			for i := 0; i < iters; i++ {
				// The stale snapshot answers its frozen epoch, always.
				if tv, err := stale.Answer(q); err != nil {
					errs <- err
				} else if tv != want {
					errs <- fmt.Errorf("stale answer flipped: %v -> %v", want, tv)
				}
				// A current snapshot answers consistently with itself.
				snap, err := sys.Snapshot()
				if err != nil {
					errs <- err
					continue
				}
				if e := snap.Epoch(); e < lastEpoch {
					errs <- fmt.Errorf("epoch went backwards: %d -> %d", lastEpoch, e)
				} else {
					lastEpoch = e
				}
				if tv, err := snap.Answer(q); err != nil {
					errs <- err
				} else if tv != True {
					errs <- fmt.Errorf("win(b) = %v in epoch %d, want true", tv, snap.Epoch())
				}
				if r%2 == 0 {
					if facts := snap.TrueFacts(); len(facts) == 0 {
						errs <- fmt.Errorf("empty TrueFacts in epoch %d", snap.Epoch())
					}
				} else {
					snap.Stats()
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := sys.Epoch(); got != writers*iters {
		t.Errorf("final epoch = %d, want %d", got, writers*iters)
	}
	if tv, _ := stale.Answer(q); tv != want {
		t.Errorf("stale snapshot drifted after the dust settled")
	}
}

// TestRenderDuringWrites exercises the snapshot-based TrueFacts /
// UndefinedFacts rendering concurrently with writes: rendering holds no
// system lock, so writes proceed while renders are in flight.
func TestRenderDuringWrites(t *testing.T) {
	sys, err := Load(`
		move(a,b). move(b,a). move(b,c).
		move(X,Y), not win(Y) -> win(X).
	`)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap, err := sys.Snapshot()
				if err != nil {
					t.Error(err)
					return
				}
				if got := snap.TrueFacts(); len(got) == 0 {
					t.Error("no true facts")
					return
				}
				snap.UndefinedFacts()
			}
		}()
	}
	for i := 0; i < 25; i++ {
		if err := sys.AddFact("move", fmt.Sprintf("r%d", i), "c"); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	snap, _ := sys.Snapshot()
	if got := len(snap.TrueFacts()); got < 25 {
		t.Errorf("final model has %d true facts, want ≥ 25", got)
	}
}

// TestParallelSolveUnderConcurrentReaders pins the modular solver's
// worker pool under -race while snapshots are being built, read, and
// invalidated concurrently: a many-component win-move program with
// Parallelism 4 makes every evaluation fan components out across solver
// goroutines, writers interleave mutations (so rebased snapshots exercise
// the incremental path's condensation closure too), and readers hold
// both stale and fresh snapshots.
func TestParallelSolveUnderConcurrentReaders(t *testing.T) {
	var b strings.Builder
	b.WriteString("move(X,Y), not win(Y) -> win(X).\n")
	for c := 0; c < 12; c++ {
		for i := 0; i < 6; i++ {
			fmt.Fprintf(&b, "move(p%d_%d, p%d_%d).\n", c, i, c, i+1)
		}
	}
	// A few genuine negation cycles so hard components solve in parallel
	// with cheap ones.
	for c := 0; c < 3; c++ {
		fmt.Fprintf(&b, "move(c%d_a, c%d_b).\nmove(c%d_b, c%d_a).\n", c, c, c, c)
	}
	sys, err := LoadWithOptions(b.String(), Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	q, err := Prepare("win(p0_1)")
	if err != nil {
		t.Fatal(err)
	}
	stale, err := sys.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	want, err := stale.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	if st := stale.Stats(); st.Model.SCCs == 0 || st.Model.HardSCCs != 3 {
		t.Fatalf("model stats missing SCC shape: %+v", st.Model)
	}

	const writers, readers, iters = 2, 6, 15
	var wg sync.WaitGroup
	// Each reader iteration can report up to two errors (stale and fresh
	// mismatch); size for the worst case so a broad regression fails
	// loudly instead of deadlocking senders.
	errs := make(chan error, (writers+2*readers)*iters)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// Fresh leaf edges only: win(p0_1) keeps its truth value.
				if err := sys.AddFact("move", fmt.Sprintf("w%d_%d", w, i), "p0_6"); err != nil {
					errs <- err
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if tv, err := stale.Answer(q); err != nil {
					errs <- err
				} else if tv != want {
					errs <- fmt.Errorf("stale answer flipped: %v -> %v", want, tv)
				}
				snap, err := sys.Snapshot()
				if err != nil {
					errs <- err
					continue
				}
				if tv, err := snap.Answer(q); err != nil {
					errs <- err
				} else if tv != want {
					errs <- fmt.Errorf("win(p0_1) = %v in epoch %d, want %v", tv, snap.Epoch(), want)
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestEpochAndInvalidation(t *testing.T) {
	sys, err := Load(`p(X) -> q(X).`)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Epoch() != 0 {
		t.Errorf("fresh epoch = %d, want 0", sys.Epoch())
	}
	if err := sys.AddFact("p", "a"); err != nil {
		t.Fatal(err)
	}
	if sys.Epoch() != 1 {
		t.Errorf("epoch after AddFact = %d, want 1", sys.Epoch())
	}
	if tv, _ := sys.TruthOf("q(a)"); tv != True {
		t.Errorf("q(a) = %v, want true after invalidation", tv)
	}
}

func TestNormalizeQuery(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"win(b)", "? win(b)."},
		{"?   win( b ) .", "? win(b)."},
		{"? p(X), not q(X).", "? p(X), not q(X)."},
	} {
		got, err := NormalizeQuery(tc.in)
		if err != nil {
			t.Errorf("NormalizeQuery(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("NormalizeQuery(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
	if _, err := NormalizeQuery("p("); err == nil {
		t.Errorf("NormalizeQuery accepted malformed input")
	}
}

func TestStats(t *testing.T) {
	sys, err := Load(`
		scientist(john).
		scientist(X) -> isAuthorOf(X, Y).
	`)
	if err != nil {
		t.Fatal(err)
	}
	st := sys.Stats()
	if st.Facts != 1 || !st.Stratified {
		t.Errorf("stats = %+v", st)
	}
	if st.Model.TrueAtoms == 0 || st.Model.ChaseAtoms == 0 {
		t.Errorf("model stats empty: %+v", st.Model)
	}
	if st.Model.MaxDepthReached == 0 {
		t.Errorf("existential rule should derive at depth > 0")
	}
	if st.DeltaBits == 0 || st.DeltaBound == "" {
		t.Errorf("δ missing: %+v", st)
	}
	if st.Algorithm != "alternating-fixpoint" {
		t.Errorf("algorithm = %q", st.Algorithm)
	}
}
