package wfs

import (
	"fmt"
	"sync"
	"testing"
)

// TestSystemConcurrentUse hammers one System from many goroutines mixing
// reads (Answer, Select, TruthOf, Stats) with writes (AddFact). Run under
// -race (as CI does) this guards the serialization contract documented on
// System: the old lazy `s.engine = nil` pattern raced here.
func TestSystemConcurrentUse(t *testing.T) {
	sys, err := Load(`
		move(a,b). move(b,a). move(b,c).
		move(X,Y), not win(Y) -> win(X).
	`)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 100)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				switch g % 4 {
				case 0:
					if g == 0 && i%4 == 3 {
						if err := sys.AddFact("move", fmt.Sprintf("n%d", i), "c"); err != nil {
							errs <- err
						}
						continue
					}
					if tv, err := sys.Answer("win(b)"); err != nil {
						errs <- err
					} else if tv != True {
						errs <- fmt.Errorf("win(b) = %v, want true", tv)
					}
				case 1:
					if _, _, err := sys.Select("? win(X)."); err != nil {
						errs <- err
					}
				case 2:
					if _, err := sys.TruthOf("win(c)"); err != nil {
						errs <- err
					}
				default:
					st := sys.Stats()
					if st.Facts < 3 {
						errs <- fmt.Errorf("stats facts = %d, want ≥ 3", st.Facts)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if sys.Epoch() == 0 {
		t.Errorf("epoch never advanced despite writes")
	}
}

func TestEpochAndInvalidation(t *testing.T) {
	sys, err := Load(`p(X) -> q(X).`)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Epoch() != 0 {
		t.Errorf("fresh epoch = %d, want 0", sys.Epoch())
	}
	if err := sys.AddFact("p", "a"); err != nil {
		t.Fatal(err)
	}
	if sys.Epoch() != 1 {
		t.Errorf("epoch after AddFact = %d, want 1", sys.Epoch())
	}
	if tv, _ := sys.TruthOf("q(a)"); tv != True {
		t.Errorf("q(a) = %v, want true after invalidation", tv)
	}
}

func TestNormalizeQuery(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"win(b)", "? win(b)."},
		{"?   win( b ) .", "? win(b)."},
		{"? p(X), not q(X).", "? p(X), not q(X)."},
	} {
		got, err := NormalizeQuery(tc.in)
		if err != nil {
			t.Errorf("NormalizeQuery(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("NormalizeQuery(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
	if _, err := NormalizeQuery("p("); err == nil {
		t.Errorf("NormalizeQuery accepted malformed input")
	}
}

func TestStats(t *testing.T) {
	sys, err := Load(`
		scientist(john).
		scientist(X) -> isAuthorOf(X, Y).
	`)
	if err != nil {
		t.Fatal(err)
	}
	st := sys.Stats()
	if st.Facts != 1 || !st.Stratified {
		t.Errorf("stats = %+v", st)
	}
	if st.Model.TrueAtoms == 0 || st.Model.ChaseAtoms == 0 {
		t.Errorf("model stats empty: %+v", st.Model)
	}
	if st.Model.MaxDepthReached == 0 {
		t.Errorf("existential rule should derive at depth > 0")
	}
	if st.DeltaBits == 0 || st.DeltaBound == "" {
		t.Errorf("δ missing: %+v", st)
	}
	if st.Algorithm != "alternating-fixpoint" {
		t.Errorf("algorithm = %q", st.Algorithm)
	}
}
