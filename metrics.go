package wfs

import (
	"sync/atomic"

	"repro/internal/trace"
)

// EngineMetrics is the always-on observability counter set of one System:
// cumulative model-build work broken down by pipeline phase, maintained
// with atomics so readers (the wfsd /metrics endpoint, session stats)
// never take the system lock and never force evaluation.
//
// The counters are fed by walking each rung build's span tree after the
// build completes (snapModel.get records one whether or not the caller
// asked for a query trace). Builds are rare — at most one per rung per
// epoch — so the accumulation walk costs nothing measurable, and the
// query hot path (Snapshot.Answer on materialized rungs) touches no
// atomic at all.
type EngineMetrics struct {
	builds  atomic.Int64 // rung/base models materialized
	rebases atomic.Int64 // of those, served by delta-rebasing a prior epoch

	chaseNS    atomic.Int64 // chase run/extend + delta retract/extend-db
	groundNS   atomic.Int64 // grounding and regrounding
	condenseNS atomic.Int64 // SCC condensation + incremental cone closure
	solveNS    atomic.Int64 // WFS fixpoint (modular, cone, and cold solves)

	chaseAtoms     atomic.Int64 // latest build's derived universe size
	chaseInstances atomic.Int64 // latest build's fired instance count
}

// EngineMetricsSnapshot is one consistent-enough read of EngineMetrics
// (each field is individually atomic; cross-field skew is bounded by one
// in-flight build).
type EngineMetricsSnapshot struct {
	Builds  int64 `json:"builds"`
	Rebases int64 `json:"rebases"`

	ChaseNS    int64 `json:"chase_ns"`
	GroundNS   int64 `json:"ground_ns"`
	CondenseNS int64 `json:"condense_ns"`
	SolveNS    int64 `json:"solve_ns"`

	ChaseAtoms     int64 `json:"chase_atoms"`
	ChaseInstances int64 `json:"chase_instances"`
}

// Read returns the current counter values.
func (em *EngineMetrics) Read() EngineMetricsSnapshot {
	if em == nil {
		return EngineMetricsSnapshot{}
	}
	return EngineMetricsSnapshot{
		Builds:         em.builds.Load(),
		Rebases:        em.rebases.Load(),
		ChaseNS:        em.chaseNS.Load(),
		GroundNS:       em.groundNS.Load(),
		CondenseNS:     em.condenseNS.Load(),
		SolveNS:        em.solveNS.Load(),
		ChaseAtoms:     em.chaseAtoms.Load(),
		ChaseInstances: em.chaseInstances.Load(),
	}
}

// observeBuild folds one finished model-build span tree into the
// counters. Only non-overlapping phase spans are summed — container
// spans (warm-solve, delta-rebase, depth-N) are skipped in favor of
// their leaves, so a nanosecond of work is counted exactly once.
func (em *EngineMetrics) observeBuild(build *trace.Span, rebased bool) {
	if em == nil {
		return
	}
	em.builds.Add(1)
	if rebased {
		em.rebases.Add(1)
	}
	build.Walk(func(s *trace.Span) {
		ns := s.Duration().Nanoseconds()
		switch s.Name() {
		case "chase", "chase-extend", "retract", "extend-db":
			em.chaseNS.Add(ns)
			if n := s.Counter("chase_atoms"); n > 0 {
				em.chaseAtoms.Store(n)
				em.chaseInstances.Store(s.Counter("chase_instances"))
			}
		case "ground", "reground":
			em.groundNS.Add(ns)
		case "condense", "cone-closure":
			em.condenseNS.Add(ns)
		case "solve", "cone-solve", "cold-solve":
			em.solveNS.Add(ns)
		}
	})
}

// Metrics returns the system's always-on engine metrics. The same
// counters accumulate across epochs for the system's whole lifetime.
func (s *System) Metrics() *EngineMetrics { return &s.metrics }
