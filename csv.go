package wfs

import (
	"encoding/csv"
	"fmt"
	"io"
)

// LoadCSV bulk-loads rows of a CSV stream as facts of the given predicate:
// each record r1,…,rn becomes pred(r1,…,rn), with every field a constant.
// All records must have the predicate's arity (fixed by the first record
// if the predicate is new). Returns the number of records read.
//
// The whole stream is applied as one delta: a single epoch bump for the
// load, with the cached evaluation state rebased onto the appended facts
// rather than discarded. A malformed stream (CSV syntax error, ragged or
// arity-violating record) rejects the entire load — the database is left
// untouched, and no epoch bump happens. An empty stream is a no-op.
func (s *System) LoadCSV(pred string, r io.Reader) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	cr.FieldsPerRecord = -1 // we do our own arity check, with a better message
	n := 0
	arity := -1
	var specs []factSpec
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return n, fmt.Errorf("wfs: csv for %s: %w", pred, err)
		}
		if arity < 0 {
			arity = len(rec)
			// Arity-check against an existing predicate up front so a
			// schema violation names the declared arity, not the first
			// record — but do NOT intern a new predicate yet: interning
			// fixes its arity permanently, and a later record may still
			// reject the whole (atomic) load. applyLocked interns after
			// the full stream has validated.
			if p, ok := s.store.LookupPred(pred); ok {
				if got := s.store.PredArity(p); got != arity {
					return n, fmt.Errorf("wfs: csv for %s: record 1 has %d fields, predicate has arity %d",
						pred, arity, got)
				}
			}
		} else if len(rec) != arity {
			return n, fmt.Errorf("wfs: csv for %s: record %d has %d fields, want %d",
				pred, n+1, len(rec), arity)
		}
		specs = append(specs, factSpec{pred: pred, args: rec})
		n++
	}
	if n == 0 {
		return 0, nil
	}
	return n, s.applyLocked(specs, nil, nil)
}
