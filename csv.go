package wfs

import (
	"encoding/csv"
	"fmt"
	"io"

	"repro/internal/atom"
	"repro/internal/term"
)

// LoadCSV bulk-loads rows of a CSV stream as facts of the given predicate:
// each record r1,…,rn becomes pred(r1,…,rn), with every field a constant.
// All records must have the predicate's arity (fixed by the first record
// if the predicate is new). Returns the number of facts added. Like
// AddFact, a non-empty load bumps the epoch and invalidates cached
// evaluation state — including on error, since earlier records may already
// have been added.
func (s *System) LoadCSV(pred string, r io.Reader) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	cr.FieldsPerRecord = -1 // we do our own arity check, with a better message
	n := 0
	defer func() {
		if n > 0 {
			s.invalidateLocked()
		}
	}()
	arity := -1
	var p atom.PredID
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return n, fmt.Errorf("wfs: csv for %s: %w", pred, err)
		}
		if arity < 0 {
			arity = len(rec)
			if p, err = s.store.Pred(pred, arity); err != nil {
				return n, err
			}
		} else if len(rec) != arity {
			return n, fmt.Errorf("wfs: csv for %s: record %d has %d fields, want %d",
				pred, n+1, len(rec), arity)
		}
		args := make([]term.ID, arity)
		for i, f := range rec {
			args[i] = s.store.Terms.Const(f)
		}
		s.db = append(s.db, s.store.Atom(p, args))
		n++
	}
	return n, nil
}
