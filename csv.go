package wfs

import (
	"encoding/csv"
	"fmt"
	"io"

	"repro/internal/term"
)

// LoadCSV bulk-loads rows of a CSV stream as facts of the given predicate:
// each record r1,…,rn becomes pred(r1,…,rn), with every field a constant.
// All records must have the predicate's arity (fixed by the first record
// if the predicate is new). Returns the number of facts added.
func (s *System) LoadCSV(pred string, r io.Reader) (int, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	n := 0
	var arity = -1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return n, fmt.Errorf("wfs: csv for %s: %w", pred, err)
		}
		if arity < 0 {
			arity = len(rec)
			if _, err := s.Store.Pred(pred, arity); err != nil {
				return n, err
			}
		} else if len(rec) != arity {
			return n, fmt.Errorf("wfs: csv for %s: record %d has %d fields, want %d",
				pred, n+1, len(rec), arity)
		}
		p, err := s.Store.Pred(pred, arity)
		if err != nil {
			return n, err
		}
		args := make([]term.ID, arity)
		for i, f := range rec {
			args[i] = s.Store.Terms.Const(f)
		}
		s.DB = append(s.DB, s.Store.Atom(p, args))
		n++
	}
	s.engine = nil
	return n, nil
}
